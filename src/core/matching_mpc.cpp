#include "core/matching_mpc.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/central.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/active_arcs.h"
#include "graph/active_set.h"
#include "graph/residual.h"
#include "mpc/primitives.h"
#include "util/memory.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using mpc::Word;

constexpr std::uint32_t kActive = MatchingMpcResult::kActive;

// Residual-proportional driver: every per-phase loop runs over the active
// frontier (ActiveSet) instead of 0..n, per-phase scratch is sized to the
// phase's active count via the dense remap and reused across phases, and
// the home-side load sums (y_old, load_of) are cached with dirty-bit
// bookkeeping. Per-phase *edge* work rides ActiveArcs, the second-level
// compaction that squeezes frozen neighbors out of the arc lists: the
// distribute loop iterates only frontier-internal arcs, the y_old rescan
// iterates only the frozen complement, and the departure walks (the
// announce batches) touch only still-active neighbors. Thresholds are
// drawn through ThresholdBatch's cached per-vertex first-level mix — and
// only for floor-clearing candidates — instead of scattered two-level
// hashes. Every recomputation keeps the ascending neighbor order of the
// pre-port alive-arc scan (the frozen scan performs exactly the additions
// the old `if (frozen)` filter performed), so all floating-point sums keep
// their summation order and outputs/freeze times/Metrics are bit-identical
// (see DESIGN.md, "ActiveArcs & batched thresholds"; pinned by
// tests/matching_regression_test.cpp).
class MatchingMpcRun {
 public:
  MatchingMpcRun(const Graph& g, const MatchingMpcOptions& options)
      : g_(g), o_(options), n_(g.num_vertices()), residual_(g), active_(n_),
        active_arcs_(residual_, active_),
        thresholds_(options.threshold_seed, options.eps,
                    options.use_random_thresholds, n_) {
    if (!(o_.eps > 0.0) || o_.eps > 0.5) {
      throw std::invalid_argument("matching_mpc: eps must be in (0, 1/2]");
    }
    words_ = o_.words_per_machine != 0 ? o_.words_per_machine
                                       : 8 * std::max<std::size_t>(n_, 64);
    // The cluster hosts both the per-vertex home shards and the per-phase
    // simulation machines (up to sqrt(n) of them).
    const std::size_t for_shards =
        (4 * g.num_edges() + words_ - 1) / words_;
    machines_ = std::max<std::size_t>(
        {2, for_shards,
         static_cast<std::size_t>(std::ceil(std::sqrt(
             static_cast<double>(std::max<std::size_t>(n_, 4))))) });

    // Grow the cluster until the hash-balanced adjacency shards fit (see
    // mis_mpc.cpp for the same auto-sizing rule).
    const std::size_t fixed_words = n_ / 16 + 1;
    std::vector<std::size_t> shard_words;
    for (;;) {
      shard_words.assign(machines_, 0);
      home_.resize(n_);
      for (VertexId v = 0; v < n_; ++v) {
        home_[v] = static_cast<std::uint32_t>(mix64(o_.seed, v, 0x70e) %
                                              machines_);
        shard_words[home_[v]] += 1 + g.degree(v);
      }
      const std::size_t max_shard =
          shard_words.empty()
              ? 0
              : *std::max_element(shard_words.begin(), shard_words.end());
      if (o_.words_per_machine != 0 || max_shard + fixed_words <= words_ ||
          machines_ >= 2 * g.num_edges() + 2) {
        break;
      }
      machines_ *= 2;
    }
    mpc::Config cfg{machines_, words_, o_.strict};
    cfg.threads = o_.threads;
    cfg.integrity = o_.integrity;
    cfg.audit = o_.audit;
    cfg.scrub_interval = o_.scrub_interval;
    const bool durable = o_.durable.enabled();
    if (durable) {
      cfg.checkpoint_dir = o_.durable.dir;
      cfg.checkpoint_every = o_.durable.every;
      // The scope is the configuration signature (see mis_mpc.cpp): a
      // checkpoint written by any differently-shaped run reads as "no
      // checkpoint" and resume starts fresh. The real-valued knobs enter
      // bit-exactly — any drift in eps or beta changes every weight.
      cfg.checkpoint_scope =
          "matching:" + std::to_string(n_) + ":" +
          std::to_string(g.num_edges()) + ":" + std::to_string(machines_) +
          ":" + std::to_string(words_) + ":" + std::to_string(o_.seed) +
          ":" + std::to_string(o_.threshold_seed) + ":" +
          std::to_string(std::bit_cast<std::uint64_t>(o_.eps)) + ":" +
          std::to_string(std::bit_cast<std::uint64_t>(o_.beta)) + ":" +
          std::to_string(o_.tail_degree_switch) + ":" +
          std::to_string(static_cast<int>(o_.paper_iteration_schedule)) +
          ":" + std::to_string(static_cast<int>(o_.use_random_thresholds));
      cfg.resume = o_.durable.resume;
      cfg.stop_flag = o_.durable.stop_flag;
      cfg.stop_after_safe_points = o_.durable.stop_after_safe_points;
    }
    engine_.emplace(cfg);
    for (std::size_t i = 0; i < machines_; ++i) {
      engine_->note_storage(i, shard_words[i] + fixed_words);
    }
    const bool plan_active =
        o_.fault_plan != nullptr && !o_.fault_plan->empty();
    if (plan_active || durable) {
      if (o_.durable.generations != 0) {
        registry_.emplace(o_.durable.generations);
      } else {
        registry_.emplace();
      }
      register_checkpoint_state();
      // The loop provider exists only for durability: keeping it out of
      // plan-only runs keeps their in-memory checkpoint accounting
      // (Metrics::checkpoint_bytes) exactly as the fault tests pinned it.
      if (durable) register_loop_state();
      engine_->set_fault_plan(plan_active ? o_.fault_plan : nullptr,
                              &*registry_, o_.fault_recovery);
    }

    w0_ = (1.0 - 2.0 * o_.eps) / static_cast<double>(std::max<std::size_t>(n_, 1));
    weight_cache_.push_back(w0_);
    phase_rng_ = Rng(mix64(o_.seed, 0x9a5e, 2));
    freeze_at_.assign(n_, kActive);
    freeze16_.assign(n_, kFrozen16Max);
    freeze8_.assign(n_, kFrozen8Max);
    removed_.assign(n_, 0);

    // Dirty-load bookkeeping state. With nobody frozen yet, every y_old is
    // the empty sum (exactly 0.0), so the y_old caches start clean; the
    // load caches start dirty (never computed). The alive-active-neighbor
    // counts live in ActiveArcs (active_degree).
    y_old_cache_.assign(n_, 0.0);
    load_cache_.assign(n_, 0.0);
    load_stamp_.assign(n_, 0);
    dirty_.assign(n_, kLoadDirty);
    local_adj_.emplace(n_);
    announce_parts_.resize(machines_);
    record_parts_.resize(machines_);
    phase_machine_.resize(n_);
    phase_machine8_.resize(n_);

    // Flat neighbor-id CSR: the load rescans and the departure walks only
    // ever read neighbor ids, so give them a 4-byte stream instead of the
    // 8-byte Arc stream (half the memory traffic on the hottest scans).
    // Valid as the alive view of any vertex that has not lost a neighbor
    // — the overwhelmingly common case, since only heavy removals kill.
    nbr_off_.resize(n_ + 1);
    std::size_t cursor = 0;
    for (VertexId v = 0; v < n_; ++v) {
      nbr_off_[v] = cursor;
      cursor += g.degree(v);
    }
    nbr_off_[n_] = cursor;
    nbr_ids_ = std::make_unique_for_overwrite<VertexId[]>(cursor);
    advise_huge_pages(nbr_ids_.get(), cursor * sizeof(VertexId));
    for (VertexId v = 0; v < n_; ++v) {
      std::size_t write = nbr_off_[v];
      for (const Arc& a : g.arcs(v)) nbr_ids_[write++] = a.to;
    }
  }

  MatchingMpcResult run() {
    result_.freeze_iteration.assign(n_, kActive);
    result_.removed_heavy.assign(n_, 0);
    result_.x.assign(g_.num_edges(), 0.0);
    if (g_.num_edges() == 0) {
      if (engine_) result_.metrics = engine_->metrics();
      return std::move(result_);
    }

    // Resume reinstates every provider (progress, freeze times, removals,
    // y_old, frontier, loop cursor) plus the engine state, then rebuilds
    // the derived frontier bookkeeping; a fresh run starts the schedule.
    if (engine_->try_resume()) {
      rebuild_after_resume();
    } else {
      d_ = static_cast<double>(n_);
    }

    while (d_ > static_cast<double>(o_.tail_degree_switch)) {
      // Safe point: provider state is self-consistent and the message
      // plane is quiescent at the phase boundary, so this is where
      // durable generations persist (and where a resumed process
      // re-enters).
      engine_->checkpoint_boundary();
      run_phase(d_, phase_rng_, result_);
      d_ *= std::pow(1.0 - o_.eps,
                     static_cast<double>(last_phase_iterations_));
      ++result_.phases;
    }

    run_tail(result_);

    // Outputs: weights from freeze times; cover = frozen + removed. The
    // 16-bit freeze mirror halves the scattered endpoint gathers (exact:
    // saturated entries min() to t_ just as their 32-bit values would).
    (void)weight_at(t_);
    // The same sweep that derives x can collect its support (weights are
    // strictly positive, so support == the alive-edge set, whose size the
    // residual graph maintains). Opt-in: the store per surviving edge is
    // measurable at bench scale, so only rounding callers pay it.
    const bool collect = o_.collect_support;
    if (collect) result_.support.reserve(residual_.alive_edge_count());
    const std::span<const Edge> edges = g_.edges();
    if (t_ < kFrozen16Max) {
      const std::uint16_t* f16 = freeze16_.data();
      const auto t16 = static_cast<std::uint16_t>(t_);
      for (EdgeId e = 0; e < edges.size(); ++e) {
        if (e + 16 < edges.size()) {
          __builtin_prefetch(&f16[edges[e + 16].v]);
        }
        const Edge ed = edges[e];
        if (removed_[ed.u] || removed_[ed.v]) continue;  // x stays 0
        const std::uint16_t tf = std::min<std::uint16_t>(
            {f16[ed.u], f16[ed.v], t16});
        result_.x[e] = weight_cache_[tf];
        if (collect) result_.support.push_back(e);
      }
    } else {
      for (EdgeId e = 0; e < edges.size(); ++e) {
        const Edge ed = edges[e];
        if (removed_[ed.u] || removed_[ed.v]) continue;  // x stays 0
        const std::uint64_t tf = std::min<std::uint64_t>(
            {freeze_at_[ed.u], freeze_at_[ed.v], t_});
        result_.x[e] = weight_at(tf);
        if (collect) result_.support.push_back(e);
      }
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (removed_[v]) {
        result_.cover.push_back(v);
        result_.removed_heavy[v] = 1;
      } else if (freeze_at_[v] != kActive) {
        result_.cover.push_back(v);
      }
      result_.freeze_iteration[v] = freeze_at_[v];
    }
    result_.total_iterations = t_;
    result_.metrics = engine_->metrics();
    return std::move(result_);
  }

 private:
  /// Dirty bits per vertex: set both when a neighbor's freeze/removal state
  /// changes, cleared individually by the corresponding refresh.
  static constexpr std::uint8_t kYOldDirty = 1;
  static constexpr std::uint8_t kLoadDirty = 2;
  static constexpr std::uint8_t kBothDirty = kYOldDirty | kLoadDirty;
  /// Saturation values of the narrow freeze-time mirrors (see freeze16_).
  static constexpr std::uint16_t kFrozen16Max = 0xffff;
  static constexpr std::uint8_t kFrozen8Max = 0xff;
  /// Relative inflation applied to every provable-skip bound. The bounds
  /// compare against sums of up to max-degree non-negative terms, whose
  /// floating-point evaluations drift from the exact values by at most
  /// ~(terms * 2^-52) relatively on either side; 1e-5 dominates several
  /// times that for any degree a 32-bit vertex id permits, while costing
  /// nothing against the ~0.1-wide gaps the bounds are compared across.
  static constexpr double kBoundSlack = 1e-5;

  /// Single point of truth for freeze-time updates: keeps the narrow
  /// mirrors in sync (saturating — kActive and any iteration at or above
  /// the mirror's cap both store the cap, which min()s correctly against
  /// any fvn below it).
  void set_freeze(VertexId v, std::uint32_t tf) noexcept {
    freeze_at_[v] = tf;
    freeze16_[v] = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(tf, kFrozen16Max));
    freeze8_[v] =
        static_cast<std::uint8_t>(std::min<std::uint32_t>(tf, kFrozen8Max));
  }

  /// Registers the driver's durable per-round state with the checkpoint
  /// registry the engine captures/restores around injected faults. Capture
  /// and restore happen inside one Engine::exchange() call, so everything
  /// serialized here is quiescent; derived state (freeze16_/freeze8_
  /// mirrors, ActiveArcs partitions, dirty-load caches) is either rebuilt
  /// on restore (set_freeze) or stays valid because its inputs round-trip
  /// bit-exactly.
  void register_checkpoint_state() {
    auto& reg = *registry_;
    // Global iteration counter — doubles as the ThresholdBatch cursor
    // (threshold draws are a stateless function of (threshold_seed, v, t)).
    reg.register_state(
        "progress",
        [this](std::vector<Word>& out) { out.push_back(t_); },
        [this](std::span<const Word> in) { t_ = in[0]; });
    // Freeze iterations; restore routes through set_freeze so the narrow
    // mirrors stay in sync.
    reg.register_state(
        "freeze",
        [this](std::vector<Word>& out) {
          const std::size_t base = out.size();
          out.resize(base + n_);
          for (VertexId v = 0; v < n_; ++v) out[base + v] = freeze_at_[v];
        },
        [this](std::span<const Word> in) {
          for (VertexId v = 0; v < n_; ++v) {
            set_freeze(v, static_cast<std::uint32_t>(in[v]));
          }
        });
    // Heavy-removal flags, bit-packed.
    reg.register_state(
        "removed",
        [this](std::vector<Word>& out) {
          const std::size_t base = out.size();
          out.resize(base + (n_ + 63) / 64, 0);
          for (VertexId v = 0; v < n_; ++v) {
            if (removed_[v]) out[base + v / 64] |= Word{1} << (v % 64);
          }
        },
        [this](std::span<const Word> in) {
          std::vector<VertexId> to_kill;
          for (VertexId v = 0; v < n_; ++v) {
            removed_[v] =
                static_cast<char>((in[v / 64] >> (v % 64)) & Word{1});
            if (removed_[v] && residual_.alive(v)) to_kill.push_back(v);
          }
          // Same-round in-process restores find the kills already applied
          // (aliveness only shrinks, and the capture happened this round);
          // a fresh-process resume replays them here.
          if (!to_kill.empty()) residual_.kill_batch(to_kill);
        });
    // Home-side frozen-contribution sums (the y_old dirty-load cache's
    // authoritative values), bit-cast so the round-trip is exact.
    reg.register_state(
        "y-old",
        [this](std::vector<Word>& out) {
          static_assert(sizeof(double) == sizeof(Word));
          const std::size_t base = out.size();
          out.resize(base + n_);
          std::memcpy(out.data() + base, y_old_cache_.data(),
                      n_ * sizeof(Word));
        },
        [this](std::span<const Word> in) {
          for (VertexId v = 0; v < n_; ++v) {
            double d;
            std::memcpy(&d, &in[v], sizeof d);
            y_old_cache_[v] = d;
          }
        });
    // Active-frontier membership, bit-packed. ActiveSet only shrinks, so
    // restore reconciles by deactivating any vertex active now but not in
    // the checkpoint (the reverse cannot happen at a same-round restore).
    reg.register_state(
        "active-frontier",
        [this](std::vector<Word>& out) {
          const std::size_t base = out.size();
          out.resize(base + (n_ + 63) / 64, 0);
          for (VertexId v = 0; v < n_; ++v) {
            if (active_.active(v)) out[base + v / 64] |= Word{1} << (v % 64);
          }
        },
        [this](std::span<const Word> in) {
          for (VertexId v = 0; v < n_; ++v) {
            const bool want = ((in[v / 64] >> (v % 64)) & Word{1}) != 0;
            if (!want && active_.active(v)) active_.deactivate(v);
          }
        });
    // Previous phase-boundary freezes (still eligible for heavy removal).
    reg.register_state(
        "boundary",
        [this](std::vector<Word>& out) {
          out.push_back(boundary_frozen_.size());
          for (const VertexId v : boundary_frozen_) out.push_back(v);
        },
        [this](std::span<const Word> in) {
          boundary_frozen_.assign(in.begin() + 1,
                                  in.begin() + 1 +
                                      static_cast<std::ptrdiff_t>(in[0]));
        });
  }

  /// The run-loop cursor (registered only for durability — see ctor): the
  /// phase driver's degree bound, the phase RNG, and the result counters
  /// accumulated so far, so a resumed process re-enters the phase (or
  /// tail) loop exactly where the persisted safe point left it. The
  /// y_tilde trace is deliberately not persisted: record_trace is a
  /// debugging aid and a resumed trace restarts at the resume point.
  void register_loop_state() {
    registry_->register_state(
        "loop",
        [this](std::vector<Word>& out) {
          out.push_back(std::bit_cast<Word>(d_));
          for (const std::uint64_t s : phase_rng_.state()) out.push_back(s);
          out.push_back(result_.phases);
          out.push_back(result_.tail_iterations);
          out.push_back(last_phase_iterations_);
          const auto put = [&out](const std::vector<std::size_t>& v) {
            out.push_back(v.size());
            for (const std::size_t e : v) out.push_back(e);
          };
          put(result_.machines_per_phase);
          put(result_.max_local_edges_per_phase);
          put(result_.active_per_phase);
          put(result_.frontier_edges_per_phase);
        },
        [this](std::span<const Word> in) {
          std::size_t at = 0;
          d_ = std::bit_cast<double>(in[at++]);
          std::array<std::uint64_t, 4> s;
          for (auto& w : s) w = in[at++];
          phase_rng_.set_state(s);
          result_.phases = static_cast<std::size_t>(in[at++]);
          result_.tail_iterations = static_cast<std::size_t>(in[at++]);
          last_phase_iterations_ = static_cast<std::size_t>(in[at++]);
          const auto take = [&in, &at](std::vector<std::size_t>& v) {
            const auto len = static_cast<std::size_t>(in[at++]);
            v.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                     in.begin() + static_cast<std::ptrdiff_t>(at + len));
            at += len;
          };
          take(result_.machines_per_phase);
          take(result_.max_local_edges_per_phase);
          take(result_.active_per_phase);
          take(result_.frontier_edges_per_phase);
        });
  }

  /// Reconciles derived state a fresh process cannot restore directly.
  /// The providers reinstate the flags (freeze times, removals, frontier
  /// membership) and replay the residual kills, but ActiveArcs was
  /// constructed against an all-active, all-alive frontier. Every list is
  /// still lazy (nothing has been queried yet), so the partitions
  /// self-heal from the restored flags on first touch; only the O(1)
  /// active-degree counters need the departure notifications replayed —
  /// one per (inactive vertex, still-active neighbor) pair, exactly the
  /// mark_frozen/mark_removed walks the interrupted process performed.
  /// Caches cannot trust the restored values blindly: the checkpoint
  /// stores y_old_cache_ verbatim, but the interrupted process's dirty_
  /// bits are deliberately not persisted — entries whose owner had
  /// kYOldDirty set there are *stale* snapshots awaiting the next
  /// refresh_y_old rescan. A fresh process therefore marks every vertex
  /// fully dirty: each refresh/load then recomputes from the restored
  /// flags, which the dirty-cache invariants (reuse equals recomputation
  /// bit for bit) make identical to what the interrupted process would
  /// have produced — for clean entries the rescan reproduces the cached
  /// value, for stale ones it produces the refresh that was pending.
  void rebuild_after_resume() {
    for (VertexId x = 0; x < n_; ++x) {
      if (active_.active(x)) continue;
      const VertexId* ids = nbr_ids_.get() + nbr_off_[x];
      const std::size_t len = nbr_off_[x + 1] - nbr_off_[x];
      for (std::size_t i = 0; i < len; ++i) {
        const VertexId u = ids[i];
        if (active_.active(u)) active_arcs_.neighbor_left_frontier(u);
      }
    }
    dirty_.assign(n_, kBothDirty);
  }

  [[nodiscard]] double weight_at(std::uint64_t iteration) const {
    while (weight_cache_.size() <= iteration) {
      weight_cache_.push_back(weight_cache_.back() / (1.0 - o_.eps));
    }
    return weight_cache_[iteration];
  }

  [[nodiscard]] bool in_graph(VertexId v) const noexcept {
    return removed_[v] == 0;
  }

  /// Takes v off the active frontier: O(1). (The distribute loop iterates
  /// ActiveArcs lists, whose entries are active by construction, so no
  /// per-vertex machine sentinel is needed.)
  void leave_frontier(VertexId v) { active_.deactivate(v); }

  /// Records that v froze (left the frontier but stays alive): its
  /// *still-active* neighbors' cached sums are stale, each has one fewer
  /// active neighbor, and their ActiveArcs lists must squeeze v out —
  /// the batch freeze notification the announce batches carry. The walk
  /// streams the flat neighbor-id row with an active-flag filter (active
  /// implies alive, so dead entries drop out for free) instead of
  /// compacting v's own ActiveArcs lists, which nothing will read again.
  /// Frozen neighbors need no marks: a frozen vertex's y_old is never
  /// queried again, and its cached load cannot change under a later
  /// freeze (every affected term is already pinned at its own earlier
  /// freeze iteration), so reuse equals recomputation bit for bit.
  void mark_frozen(VertexId v) {
    const VertexId* ids = nbr_ids_.get() + nbr_off_[v];
    const std::size_t len = nbr_off_[v + 1] - nbr_off_[v];
    for (std::size_t i = 0; i < len; ++i) {
      const VertexId u = ids[i];
      if (!active_.active(u)) continue;
      dirty_[u] = kBothDirty;
      active_arcs_.neighbor_left_frontier(u);
    }
    dirty_[v] = kBothDirty;
  }

  /// Records that v is being removed (killed in the residual): unlike a
  /// freeze this changes *every* alive neighbor's load sum (the edge
  /// disappears), so all of them go dirty; active ones additionally lose
  /// an active neighbor, frozen ones must drop v from their frozen lists.
  /// O(residual degree of v), paid at most once per vertex.
  void mark_removed(VertexId v, bool was_active) {
    for (const Arc& a : residual_.alive_arcs(v)) {
      dirty_[a.to] = kBothDirty;
      if (was_active) {
        active_arcs_.neighbor_left_frontier(a.to);
      } else {
        active_arcs_.frozen_neighbor_removed(a.to);
      }
    }
    dirty_[v] = kBothDirty;
  }

  /// y_old of v — the frozen-neighbor contribution, recomputed only when a
  /// neighbor changed state, by scanning exactly the frozen complement of
  /// v's arc list (ActiveArcs). The old full alive-arc scan only ever
  /// *added* on frozen entries, ascending by neighbor id — which is
  /// precisely the frozen list's order — so the sum is bit-identical while
  /// the scan skips the (typically much longer) active part entirely.
  void refresh_y_old(VertexId v) {
    if ((dirty_[v] & kYOldDirty) == 0) return;
    if (active_arcs_.active_degree(v) == residual_.residual_degree(v)) {
      // No alive neighbor is frozen: the scan would add nothing.
      y_old_cache_[v] = 0.0;
      dirty_[v] &= static_cast<std::uint8_t>(~kYOldDirty);
      return;
    }
    double y = 0.0;
    const auto frozen = active_arcs_.frozen_neighbors(v);
    (void)weight_at(t_);  // pre-extends the cache: every freeze time is <= t_
    const double* w = weight_cache_.data();
    if (t_ < kFrozen16Max) {
      // Every freeze time so far is below the mirror's saturation point.
      const std::uint16_t* f16 = freeze16_.data();
      for (std::size_t idx = 0; idx < frozen.size(); ++idx) {
        if (idx + 8 < frozen.size()) {
          __builtin_prefetch(&f16[frozen[idx + 8]]);
        }
        y += w[f16[frozen[idx]]];
      }
    } else {
      for (std::size_t idx = 0; idx < frozen.size(); ++idx) {
        if (idx + 8 < frozen.size()) {
          __builtin_prefetch(&freeze_at_[frozen[idx + 8]]);
        }
        y += w[freeze_at_[frozen[idx]]];
      }
    }
    y_old_cache_[v] = y;
    dirty_[v] &= static_cast<std::uint8_t>(~kYOldDirty);
  }

  /// The value a load scan produces when all `count` terms are the same
  /// weight `w`: w added to 0.0 `count` times, left to right — computed
  /// once per (w, count) prefix via a running table, so uniform
  /// neighborhoods (nothing frozen nearby — the common case while the
  /// frontier is still wide) cost O(1) instead of O(degree). Bit-identical
  /// to the scan by construction: the table entries ARE the sequential
  /// partial sums.
  [[nodiscard]] double repeated_sum(double w, std::size_t count) {
    if (repsum_.empty() || repsum_w_ != w) {
      repsum_.assign(1, 0.0);
      repsum_w_ = w;
    }
    while (repsum_.size() <= count) {
      repsum_.push_back(repsum_.back() + w);
    }
    return repsum_[count];
  }

  /// Load of v in G[V'] at global iteration `now` (derived state; homes can
  /// compute this locally because freeze times are common knowledge).
  /// Cached: a clean value is reused when it cannot depend on `now` — v is
  /// frozen (every term min(freeze_v, freeze_u, now) is already pinned
  /// below now), v has no alive active neighbor (same), or `now` is the
  /// stamp it was computed at. Recomputation is the ascending alive-arc
  /// scan (served from graph storage while nothing near v has died — no
  /// per-freeze list maintenance, which is why this deliberately does NOT
  /// walk the ActiveArcs partition), so reused and recomputed values are
  /// bit-identical.
  [[nodiscard]] double load_of(VertexId v, std::uint64_t now) {
    if ((dirty_[v] & kLoadDirty) == 0 &&
        (load_stamp_[v] == now || freeze_at_[v] != kActive ||
         active_arcs_.active_degree(v) == 0)) {
      return load_cache_[v];
    }
    double y;
    const std::size_t deg = residual_.residual_degree(v);
    if (freeze_at_[v] == kActive && active_arcs_.active_degree(v) == deg) {
      // Uniform neighborhood: v and every alive neighbor are active, so
      // each of the `deg` scan terms is exactly weight_at(now).
      y = repeated_sum(weight_at(now), deg);
    } else {
      (void)weight_at(now);  // pre-extends the cache for direct indexing
      const double* w = weight_cache_.data();
      const std::uint64_t fvn =
          std::min<std::uint64_t>(freeze_at_[v], now);
      if (deg == g_.degree(v)) {
        // No neighbor of v ever died: the alive view is the full row, so
        // stream the 4-byte neighbor ids instead of the 8-byte arcs.
        y = capped_sum(nbr_ids_.get() + nbr_off_[v], deg, fvn, w);
      } else {
        const auto arcs = residual_.alive_arcs(v);
        y = capped_sum(arcs.data(), arcs.size(), fvn, w);
      }
    }
    load_cache_[v] = y;
    load_stamp_[v] = now;
    dirty_[v] &= static_cast<std::uint8_t>(~kLoadDirty);
    return y;
  }

  static VertexId to_of(VertexId v) noexcept { return v; }
  static VertexId to_of(const Arc& a) noexcept { return a.to; }

  /// The capped load scan: sum of w[min(freeze(u), fvn)] over the given
  /// neighbor entries, in order. Dispatches to the narrowest exact freeze
  /// mirror (a saturated entry min()s to fvn exactly as the full-width
  /// value would whenever fvn is below the mirror's cap), which keeps the
  /// gather table L2-sized on the hot path.
  template <typename Entry>
  [[nodiscard]] double capped_sum(const Entry* entries, std::size_t len,
                                  std::uint64_t fvn, const double* w) const {
    double y = 0.0;
    if (fvn < kFrozen8Max) {
      const std::uint8_t* f8 = freeze8_.data();
      const auto fvn8 = static_cast<std::uint8_t>(fvn);
      for (std::size_t i = 0; i < len; ++i) {
        y += w[std::min<std::uint8_t>(f8[to_of(entries[i])], fvn8)];
      }
    } else if (fvn < kFrozen16Max) {
      const std::uint16_t* f16 = freeze16_.data();
      const auto fvn16 = static_cast<std::uint16_t>(fvn);
      for (std::size_t i = 0; i < len; ++i) {
        if (i + 8 < len) __builtin_prefetch(&f16[to_of(entries[i + 8])]);
        y += w[std::min<std::uint16_t>(f16[to_of(entries[i])], fvn16)];
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        if (i + 8 < len) __builtin_prefetch(&freeze_at_[to_of(entries[i + 8])]);
        y += w[std::min<std::uint64_t>(freeze_at_[to_of(entries[i])], fvn)];
      }
    }
    return y;
  }

  /// load_of for a vertex known active and uniform, without touching the
  /// cache: the value is an O(1) table read and re-deriving it later is as
  /// cheap as reusing it, so skipping the cache write (and the dirty-bit
  /// clear) saves three scattered stores per query. Leaving the entry
  /// dirty only means a later query recomputes — bit-identically.
  [[nodiscard]] double uniform_load(std::size_t deg, std::uint64_t now) {
    return repeated_sum(weight_at(now), deg);
  }

  /// Streams `n` packed records through per-sender buckets so each
  /// sender's batch drains sequentially through one outbox (the
  /// flat-staging detour of the distribute records and freeze reports):
  /// per-sender order is the iteration order, exactly as a direct push
  /// loop would stage, so inboxes and Metrics are unchanged. `sender_of`
  /// and `packed_of` are indexed by item; `append` unpacks one record
  /// into the sender's outbox.
  template <typename SenderOf, typename PackedOf, typename AppendFn>
  void stream_by_sender(std::size_t n, SenderOf&& sender_of,
                        PackedOf&& packed_of, AppendFn&& append) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t s = sender_of(i);
      auto& part = record_parts_[s];
      if (part.empty()) record_touched_.push_back(s);
      part.push_back(packed_of(i));
    }
    for (const std::uint32_t s : record_touched_) {
      mpc::Outbox ob = engine_->outbox(s);
      auto& part = record_parts_[s];
      ob.reserve(part.size());
      for (const Word rec : part) append(ob, rec);
      part.clear();
    }
    record_touched_.clear();
  }

  /// Announces freshly decided vertices (frozen with their iteration, or
  /// removed) to the whole cluster: gather at the leader, broadcast the
  /// concatenation. Keeps freeze times common knowledge. ~3 rounds; skipped
  /// when there is nothing to announce. The per-home staging vectors are
  /// persistent; only the homes actually touched are cleared afterwards.
  void announce(const std::vector<std::pair<VertexId, std::uint64_t>>& frozen,
                const std::vector<VertexId>& removed) {
    if (frozen.empty() && removed.empty()) return;
    mpc::ExecutionBackend& backend = engine_->backend();
    if (backend.parallel()) {
      // Chunked over the concatenated (frozen, removed) announcement list;
      // per-home record order is the global list order (slot-ascending
      // drain over a contiguous partition), so every home's staged part is
      // identical to the sequential staging below.
      const std::size_t nf = frozen.size();
      const std::size_t total = nf + removed.size();
      announce_shards_.reset(backend.threads(), machines_);
      backend.run_chunks(
          0, total, [&](std::size_t slot, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              if (i < nf) {
                const auto& [v, tf] = frozen[i];
                announce_shards_.add(slot, home_[v], 0,
                                     (static_cast<Word>(v) << 32) | tf);
              } else {
                const VertexId v = removed[i - nf];
                announce_shards_.add(
                    slot, home_[v], 0,
                    (static_cast<Word>(v) << 32) | 0xffffffffULL);
              }
            }
          });
      announce_shards_.drain(
          backend, [&](std::uint32_t sender,
                       std::span<const mpc::StageRecord> records) {
            auto& part = announce_parts_[sender];
            for (const mpc::StageRecord& rec : records) {
              part.push_back(rec.word);
            }
          });
      for (const std::uint32_t h : announce_shards_.drained_senders()) {
        announce_touched_.push_back(h);
      }
    } else {
      const auto stage = [&](VertexId v, Word word) {
        auto& part = announce_parts_[home_[v]];
        if (part.empty()) announce_touched_.push_back(home_[v]);
        part.push_back(word);
      };
      for (const auto& [v, tf] : frozen) {
        stage(v, (static_cast<Word>(v) << 32) | tf);
      }
      for (const VertexId v : removed) {
        stage(v, (static_cast<Word>(v) << 32) | 0xffffffffULL);
      }
    }
    const auto gathered = mpc::gather_to(*engine_, 0, announce_parts_);
    mpc::broadcast_view(*engine_, 0, gathered);
    for (const std::uint32_t h : announce_touched_) {
      announce_parts_[h].clear();
    }
    announce_touched_.clear();
  }

  void run_phase(double d, Rng& phase_rng, MatchingMpcResult& result) {
    const auto m = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::floor(std::sqrt(d))));
    const std::size_t iters = phase_iterations(d, m);
    last_phase_iterations_ = iters;
    result.machines_per_phase.push_back(m);

    // Line (d): fresh uniform partition. The leader draws a seed and
    // broadcasts it; machine assignment is then common knowledge.
    const std::uint64_t part_seed = phase_rng();
    {
      const Word payload[] = {part_seed};
      mpc::broadcast_view(*engine_, 0, payload);
    }

    // Phase-start frontier: dense remap, so every per-phase scratch below
    // is sized to k = |active| and reused across phases. The snapshot (and
    // the dense ids) stay valid across mid-phase freezes.
    const auto snapshot = active_.remap();
    const std::size_t k = snapshot.size();
    result.active_per_phase.push_back(k);
    machine_of_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      machine_of_[i] =
          static_cast<std::uint32_t>(mix64(part_seed, snapshot[i]) % m);
      // Neighbor-side view of the same assignment (ActiveArcs entries are
      // active by construction, so no activity check is left to do). The
      // distribute filter reads the byte table — cache-resident at any n
      // where this loop matters, and exact whenever m <= 256; the word
      // table breaks the rare byte collisions of the few large-m phases.
      phase_machine_[snapshot[i]] = machine_of_[i];
      phase_machine8_[snapshot[i]] =
          static_cast<std::uint8_t>(machine_of_[i]);
    }

    // Line (b): y_old — the frozen contribution, constant over the phase.
    // Computed at each vertex's home from common knowledge; only vertices
    // whose neighborhood changed state since their last refresh rescan —
    // and only their frozen complement, via ActiveArcs.
    for (const VertexId v : snapshot) refresh_y_old(v);

    // Phase-level freeze bound: every estimate the phase can produce is,
    // in exact arithmetic, at most m * (d_res * w_last) + max_yold (local
    // degrees are bounded by residual degrees, weights peak at the last
    // iteration, frozen sums start at zero). When even that — inflated by
    // kBoundSlack against the floating-point drift — stays below the
    // threshold stream's floor, no iteration of this phase can freeze
    // anything: the local simulation state and every sweep are provably
    // no-ops and are skipped wholesale, leaving exactly the engine
    // traffic (which the model charges for regardless). Tracing runs
    // evaluate everything, as ever.
    const double floor_t = thresholds_.lower_bound();
    double max_yold = 0.0;
    for (const VertexId v : snapshot) {
      max_yold = std::max(max_yold, y_old_cache_[v]);
    }
    const double w_last = weight_at(t_ + iters - 1);
    const bool phase_can_freeze =
        o_.record_trace ||
        (static_cast<double>(m) *
             (static_cast<double>(residual_.max_alive_degree()) * w_last) +
         max_yold) *
                (1.0 + kBoundSlack) >=
            floor_t;

    // Distribute the induced active subgraphs: each active edge with both
    // endpoints on the same simulation machine moves from its (lower
    // endpoint's) home shard to that machine; each active vertex's
    // (id, y_old) record moves from its home. Real traffic, one round.
    // Iterating the frontier in id order and each vertex's *active* upper
    // neighbors (ActiveArcs) visits the frontier-internal edges in edge-id
    // (lexicographic) order, exactly as the old alive-arc scan with its
    // activity filter did — but without ever touching frozen arcs, so this
    // loop's cost is proportional to the frontier-internal edge count.
    //
    // Every word of v's burst — the vertex record and the same-machine
    // edges — flows home_[v] -> mv, so the burst goes through one streamed
    // outbox and stages as a single run-length record (the engine's
    // counting and delivery then cost O(bursts), not O(words)). Per-sender
    // word totals and per-receiver totals are unchanged from the separate
    // record/edge loops this replaces, so every Metrics field is
    // bit-identical; nothing reads these inboxes (the simulation is
    // local), so the within-stream order is free.
    machine_edges_.assign(m, 0);
    local_pairs_.clear();
    matched_uppers_.clear();
    std::size_t frontier_edges = 0;
    const bool byte_exact = m <= 256;
    // Flat staging rewards sender-sequential bursts (runs stage into each
    // sender's contiguous stream), so the edge/record producers below take
    // a collect-then-stream detour that groups traffic by sender — the
    // scattered direct pushes would otherwise hop across two cache lines
    // per word over `machines_` senders' staging tails. On the dense path
    // the per-pair boxes make the direct push optimal and the detour is
    // pure overhead. Both variants stage identical per-sender streams
    // word for word — the choice, like the engine's own representation
    // choice, is observable only as wall-clock.
    const bool streamed_detour = !engine_->dense_staging_active();
    mpc::ExecutionBackend& backend = engine_->backend();
    if (backend.parallel()) {
      // Parallel distribute scan. A sequential pre-pass collects every
      // frontier vertex's active-upper span first: the lazy accessors
      // (materialize/compact) mutate ActiveArcs' shared scratch and may
      // not run concurrently, but the spans they return for *distinct*
      // vertices stay valid simultaneously (per-vertex segments of the
      // arc buffer). The chunked phase then reads only cached spans and
      // plain arrays, writing slot-private scratch; merges are in
      // ascending slot order over a contiguous partition of [0, k), so
      // matched_uppers_, local_pairs_, machine_edges_, frontier_edges,
      // and every staged engine stream are bit-identical to the
      // sequential scan below.
      upper_spans_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        upper_spans_[i] = active_arcs_.active_upper_neighbors(snapshot[i]);
      }
      const std::size_t slots = backend.threads();
      if (slot_matched_.size() < slots) slot_matched_.resize(slots);
      if (slot_pairs_.size() < slots) slot_pairs_.resize(slots);
      slot_counts_.assign(slots * m, 0);
      slot_frontier_.assign(slots, 0);
      if (!streamed_detour) distribute_shards_.reset(slots, machines_);
      backend.run_chunks(
          0, k, [&](std::size_t slot, std::size_t lo, std::size_t hi) {
            auto& matched = slot_matched_[slot];
            auto& pairs = slot_pairs_[slot];
            matched.clear();
            pairs.clear();
            std::size_t* medges = slot_counts_.data() + slot * m;
            std::size_t fe = 0;
            for (std::size_t i = lo; i < hi; ++i) {
              const VertexId v = snapshot[i];
              const std::uint32_t mv = machine_of_[i];
              const auto mv8 = static_cast<std::uint8_t>(mv);
              const auto uppers = upper_spans_[i];
              fe += uppers.size();
              for (std::size_t idx = 0; idx < uppers.size(); ++idx) {
                const VertexId u = uppers[idx];
                if (phase_machine8_[u] != mv8) continue;
                if (!byte_exact && phase_machine_[u] != mv) continue;
                if (streamed_detour) {
                  matched.emplace_back(static_cast<VertexId>(i), u);
                } else {
                  distribute_shards_.add(
                      slot, home_[v], mv,
                      (static_cast<Word>(v) << 32) | u);
                }
                if (phase_can_freeze) {
                  pairs.emplace_back(
                      static_cast<VertexId>(i),
                      static_cast<VertexId>(active_.dense_index(u)));
                }
                ++medges[mv];
              }
            }
            slot_frontier_[slot] = fe;
          });
      for (std::size_t s = 0; s < slots; ++s) {
        frontier_edges += slot_frontier_[s];
        const std::size_t* medges = slot_counts_.data() + s * m;
        for (std::size_t j = 0; j < m; ++j) machine_edges_[j] += medges[j];
        matched_uppers_.insert(matched_uppers_.end(),
                               slot_matched_[s].begin(),
                               slot_matched_[s].end());
        local_pairs_.insert(local_pairs_.end(), slot_pairs_[s].begin(),
                            slot_pairs_[s].end());
      }
      if (!streamed_detour) {
        distribute_shards_.drain(
            backend, [&](std::uint32_t sender,
                         std::span<const mpc::StageRecord> records) {
              mpc::Outbox ob = engine_->outbox(sender);
              for (const mpc::StageRecord& rec : records) {
                ob.append(rec.to, rec.word);
              }
            });
      }
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        const VertexId v = snapshot[i];
        const std::uint32_t mv = machine_of_[i];
        const auto mv8 = static_cast<std::uint8_t>(mv);
        const auto uppers = active_arcs_.active_upper_neighbors(v);
        frontier_edges += uppers.size();
        for (std::size_t idx = 0; idx < uppers.size(); ++idx) {
          const VertexId u = uppers[idx];
          if (phase_machine8_[u] != mv8) continue;
          if (!byte_exact && phase_machine_[u] != mv) continue;
          if (streamed_detour) {
            // Match rate is ~1/m per arc: matches land in a flat sequential
            // scratch so the filter scan stays free of staging machinery,
            // and are streamed as per-vertex runs right below.
            matched_uppers_.emplace_back(static_cast<VertexId>(i), u);
          } else {
            engine_->push(home_[v], mv, (static_cast<Word>(v) << 32) | u);
          }
          if (phase_can_freeze) {
            local_pairs_.emplace_back(
                static_cast<VertexId>(i),
                static_cast<VertexId>(active_.dense_index(u)));
          }
          ++machine_edges_[mv];
        }
      }
    }
    result.frontier_edges_per_phase.push_back(frontier_edges);
    // Stream the matched edges home -> machine. Matches arrive v-major, so
    // each vertex's burst shares one (home, machine) pair and stages as a
    // single run through its home's outbox; per-sender push order is
    // exactly the scan order, as before.
    for (std::size_t idx = 0; idx < matched_uppers_.size();) {
      const std::uint32_t i = matched_uppers_[idx].first;
      const VertexId v = snapshot[i];
      const std::uint32_t mv = machine_of_[i];
      mpc::Outbox ob = engine_->outbox(home_[v]);
      do {
        ob.append(mv, (static_cast<Word>(v) << 32) |
                          matched_uppers_[idx].second);
        ++idx;
      } while (idx < matched_uppers_.size() &&
               matched_uppers_[idx].first == i);
    }
    // The per-vertex records. On the flat path they are bucketed by home
    // first so each home's batch streams through one outbox in a single
    // sequential burst — the engine-side staging writes stay
    // cache-resident instead of hopping across a random sender's buffers
    // per record. Bucket order preserves each home's snapshot order, so
    // every sender's stream (and therefore every inbox and every Metrics
    // field) is identical to the plain per-record push loop. (remap()
    // assigns dense ids in ascending snapshot order, so the dense index
    // of snapshot[i] is i — no lookup needed.)
    if (streamed_detour) {
      stream_by_sender(
          k, [&](std::size_t i) { return home_[snapshot[i]]; },
          [&](std::size_t i) {
            return (static_cast<Word>(machine_of_[i]) << 32) | snapshot[i];
          },
          [](mpc::Outbox& ob, Word rec) {
            ob.append(static_cast<std::size_t>(rec >> 32),
                      rec & 0xffffffffULL);
          });
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        engine_->push(home_[snapshot[i]], machine_of_[i], snapshot[i]);
      }
    }
    engine_->exchange();

    std::size_t max_local_edges = 0;
    for (std::size_t i = 0; i < m; ++i) {
      max_local_edges = std::max(max_local_edges, machine_edges_[i]);
    }
    result.max_local_edges_per_phase.push_back(max_local_edges);

    // Line (e): local simulation of I iterations on every machine.
    // Per-vertex local state — dense-indexed, so it costs O(k) to set up
    // and the adjacency build costs O(local edges) (CsrScratch): an
    // iteration is O(still-active vertices) plus O(degree) per freeze.
    // All of it skipped when the phase bound proved no freeze possible.
    frozen_this_phase_.clear();
    const std::uint64_t t_start = t_;
    std::uint32_t max_ld = 0;
    if (phase_can_freeze) {
      local_adj_->clear();
      local_adj_->build(local_pairs_);
      local_deg_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        local_deg_[i] = local_adj_->degree(static_cast<VertexId>(i));
        max_ld = std::max(max_ld, local_deg_[i]);
      }
      local_frozen_sum_.assign(k, 0.0);
    }
    for (std::size_t it = 0; phase_can_freeze && it < iters; ++it) {
      const std::uint64_t tau = t_start + it;
      const double w_tau = weight_at(tau);
      // Per-iteration refinement of the phase bound, valid while nothing
      // froze this phase (then every local_frozen_sum_ is exactly 0 and
      // local_deg_ is pristine): each y~ = m*(0 + ld*w) + y_old is, in
      // exact arithmetic, at most m*max_ld*w + max_yold, and the same
      // kBoundSlack inflation covers the floating-point drift.
      // Below the floor, the whole iteration's sweep (and draws) is
      // skipped in O(1) — bit-identical, since it provably produces no
      // freeze. record_trace needs every estimate reported, so tracing
      // runs disable the skip.
      if (!o_.record_trace && frozen_this_phase_.empty()) {
        const double ub =
            (static_cast<double>(m) *
                 (static_cast<double>(max_ld) * w_tau) +
             max_yold) *
            (1.0 + kBoundSlack);
        if (ub < floor_t) {
          ++t_;
          continue;
        }
      }
      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      // (A) freeze against the shared thresholds, simultaneously. The
      // active list self-compacts, so vertices frozen in earlier
      // iterations are paid for once, not rescanned every iteration.
      // Two passes: first one vectorized sweep computes every frontier
      // vertex's estimate into a dense-indexed scratch, then thresholds
      // are drawn — through the batch's cached per-vertex first-level mix,
      // one second-level hash each — only for the vertices at or above the
      // stream's floor. A draw for anything below the floor loses the
      // comparison no matter what it samples, and the stream is stateless,
      // so skipping it is bit-identical (see ThresholdBatch::lower_bound).
      newly_frozen_.clear();
      const auto frontier = active_.actives();
      y_scratch_.resize(frontier.size());
      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        const VertexId v = frontier[fi];
        const std::uint32_t i = active_.dense_index(v);
        y_scratch_[fi] =
            static_cast<double>(m) *
                (local_frozen_sum_[i] +
                 static_cast<double>(local_deg_[i]) * w_tau) +
            y_old_cache_[v];
        if (trace_row) (*trace_row)[v] = y_scratch_[fi];
      }
      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        if (y_scratch_[fi] < floor_t) continue;
        const VertexId v = frontier[fi];
        if (y_scratch_[fi] >= thresholds_.threshold(v, tau)) {
          newly_frozen_.push_back(v);
        }
      }
      for (const VertexId v : newly_frozen_) {
        set_freeze(v, static_cast<std::uint32_t>(tau));
        frozen_this_phase_.emplace_back(v, tau);
        leave_frontier(v);
      }
      // (B) is implicit (weights are derived); update local views of the
      // newly frozen vertices' edges.
      for (const VertexId v : newly_frozen_) {
        const std::uint32_t vi = active_.dense_index(v);
        for (const VertexId ui : local_adj_->neighbors(vi)) {
          const VertexId u = active_.vertex_at(ui);
          if (freeze_at_[u] != kActive &&
              freeze_at_[u] < tau) {
            continue;  // edge already froze earlier
          }
          if (freeze_at_[u] == static_cast<std::uint32_t>(tau) && u < v) {
            continue;  // both froze now; handled from the lower id
          }
          // Edge (v,u) freezes at w_tau for the still-active (or
          // simultaneously frozen) partner's bookkeeping.
          if (local_deg_[ui] > 0) --local_deg_[ui];
          local_frozen_sum_[ui] += w_tau;
          if (local_deg_[vi] > 0) --local_deg_[vi];
          local_frozen_sum_[vi] += w_tau;
        }
      }
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
    }

    if (!phase_can_freeze) t_ += iters;

    // Machines report the freeze decisions; they become common knowledge.
    // Same sender-grouping detour as the records above: on big flat
    // clusters the reports are bucketed by their simulation machine so
    // each sender's batch streams sequentially (identical per-sender
    // order and Metrics either way).
    if (streamed_detour) {
      stream_by_sender(
          frozen_this_phase_.size(),
          [&](std::size_t i) {
            return machine_of_[active_.dense_index(frozen_this_phase_[i].first)];
          },
          [&](std::size_t i) {
            const auto& [v, tf] = frozen_this_phase_[i];
            return (static_cast<Word>(v) << 32) | tf;
          },
          [this](mpc::Outbox& ob, Word rec) {
            ob.append(home_[static_cast<VertexId>(rec >> 32)], rec);
          });
    } else {
      for (const auto& [v, tf] : frozen_this_phase_) {
        engine_->push(machine_of_[active_.dense_index(v)], home_[v],
                      (static_cast<Word>(v) << 32) | tf);
      }
    }
    engine_->exchange();

    // The phase's freezes become visible to the home-side load sums below:
    // the batch the machines just announced is walked once, marking each
    // leaver's still-active neighbors (same-batch leavers were already
    // deactivated, so the walks skip them — their own self-marks suffice).
    for (const auto& [v, tf] : frozen_this_phase_) {
      mark_frozen(v);
    }

    // Lines (g)-(h): loads on G[V'] from reconciled weights (local at
    // homes). Lines (i)-(j): heavy removal, then end-of-phase freezing.
    // Candidates are exactly the vertices the old 0..n scan would visit:
    // still-active, frozen this phase, or frozen at the previous phase
    // boundary (their freeze iteration equals this phase's t_start, so the
    // old `freeze_at < t_start` skip did not exclude them). load_of is
    // pure until the batch below, so visiting order does not matter.
    removed_now_.clear();
    frozen_now_.clear();
    // Every load term w[min(tf, fvn)] is at most w[t_] (weights grow, the
    // caps only shrink), so every load is at most max_alive_degree * w[t_]
    // in exact arithmetic; with the same kBoundSlack inflation as the
    // iteration bound, a value below the freeze bar proves the whole
    // phase-end sweep changes nothing and it is skipped in O(1).
    const std::size_t dmax = residual_.max_alive_degree();
    const bool sweep_can_fire =
        static_cast<double>(dmax) * weight_at(t_) * (1.0 + kBoundSlack) >
        1.0 - 2.0 * o_.eps;
    if (sweep_can_fire) {
      // A uniform-active vertex's load is repeated_sum(w_now, deg) — a
      // function of its degree alone, and non-decreasing in it (w > 0). So
      // the load comparisons collapse to degree comparisons against the
      // smallest degrees whose table value clears each bar, computed once
      // per phase end; the sweep then classifies uniform vertices with two
      // integer compares and no load evaluation at all (bit-identical by
      // monotonicity of the sequential partial sums).
      std::size_t d_frz = dmax + 1;
      std::size_t d_rem = dmax + 1;
      {
        const double w_now = weight_at(t_);
        for (std::size_t dd = 0; dd <= dmax; ++dd) {
          const double y = repeated_sum(w_now, dd);
          if (d_frz > dmax && y > 1.0 - 2.0 * o_.eps) d_frz = dd;
          if (y > 1.0) {
            d_rem = dd;
            break;
          }
        }
      }
      const auto consider = [&](VertexId v) {
        const std::size_t deg = residual_.residual_degree(v);
        if (freeze_at_[v] == kActive && active_arcs_.active_degree(v) == deg) {
          if (deg >= d_rem) {
            removed_now_.push_back(v);
          } else if (deg >= d_frz) {
            frozen_now_.push_back({v, t_});
          }
          return;
        }
        const double y = load_of(v, t_);
        if (y > 1.0) {
          removed_now_.push_back(v);
        } else if (y > 1.0 - 2.0 * o_.eps && freeze_at_[v] == kActive) {
          frozen_now_.push_back({v, t_});
        }
      };
      for (const VertexId v : active_.actives()) consider(v);
      for (const auto& [v, tf] : frozen_this_phase_) consider(v);
      for (const VertexId v : boundary_frozen_) {
        if (in_graph(v)) consider(v);
      }
    }  // sweep_can_fire
    for (const VertexId v : removed_now_) {
      mark_removed(v, /*was_active=*/freeze_at_[v] == kActive);
      removed_[v] = 1;
      set_freeze(v, kActive);  // removed, not frozen
      leave_frontier(v);
      residual_.kill(v);
    }
    for (const auto& [v, tf] : frozen_now_) {
      set_freeze(v, static_cast<std::uint32_t>(tf));
      leave_frontier(v);
      mark_frozen(v);
    }
    boundary_frozen_.clear();
    for (const auto& [v, tf] : frozen_now_) boundary_frozen_.push_back(v);
    announce(frozen_now_, removed_now_);
    announce(frozen_this_phase_, kNoRemovals);
  }

  /// Line (4): direct simulation of Central-Rand until every edge of
  /// G[V'] is frozen. Homes compute loads locally (common knowledge) and
  /// newly frozen vertices are announced each iteration.
  ///
  /// The per-iteration sweep runs over a worklist seeded with the frontier
  /// and compacted as vertices freeze. The tail never removes a vertex, so
  /// a worklist member with no active neighbor has a load that is pinned
  /// for the rest of the tail; once that load is below the threshold
  /// stream's floor the vertex can never freeze again and drops out of the
  /// sweep for good (it simply stays active when the tail ends, exactly as
  /// before — nothing downstream reads it). Vertices that can still freeze
  /// draw their threshold through the batch cache, and only when their
  /// load reaches the floor. With record_trace every active vertex's load
  /// must be reported each iteration, so the trace path keeps the full
  /// frontier sweep.
  void run_tail(MatchingMpcResult& result) {
    const std::size_t guard =
        2 + static_cast<std::size_t>(
                std::ceil(std::log(1.0 / w0_) / -std::log1p(-o_.eps)));
    const double floor_t = thresholds_.lower_bound();
    const auto frontier = active_.actives();
    tail_work_.assign(frontier.begin(), frontier.end());
    while (true) {
      // Safe point: the tail's own loop boundary (see run()). A resumed
      // process re-seeds the worklist from the restored frontier — a
      // superset of the interrupted worklist whose re-added members all
      // fail the floor check without drawing thresholds, so the replay
      // stays bit-identical.
      engine_->checkpoint_boundary();
      if (result.tail_iterations > guard) {
        throw std::logic_error("matching_mpc tail: did not terminate (bug)");
      }
      // Any active-active edge left? ActiveArcs counts exactly the alive
      // active neighbors; dropped worklist members all had count 0, so the
      // early-exit scan over the worklist answers for the whole frontier.
      bool any_active_edge = false;
      for (const VertexId v : tail_work_) {
        if (active_.active(v) && active_arcs_.active_degree(v) > 0) {
          any_active_edge = true;
          break;
        }
      }
      if (!any_active_edge) break;

      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      frozen_now_.clear();
      // Degree bar for uniform vertices this iteration: the smallest
      // degree whose all-active load reaches the threshold floor (exact —
      // every smaller degree's table value was checked below the floor).
      const std::size_t dmax = residual_.max_alive_degree();
      std::size_t d_floor = dmax + 1;
      const double w_now = weight_at(t_);
      for (std::size_t dd = 0; dd <= dmax; ++dd) {
        if (repeated_sum(w_now, dd) >= floor_t) {
          d_floor = dd;
          break;
        }
      }
      std::size_t write = 0;
      for (std::size_t i = 0; i < tail_work_.size(); ++i) {
        const VertexId v = tail_work_[i];
        if (!active_.active(v)) continue;  // froze in an earlier iteration
        const std::size_t deg = residual_.residual_degree(v);
        const std::size_t adeg = active_arcs_.active_degree(v);
        const bool uniform = adeg == deg;
        if (uniform && deg < d_floor && !trace_row) {
          // Below the floor for sure; with no active neighbor the load is
          // pinned below it forever — drop from the sweep for good.
          if (adeg > 0) tail_work_[write++] = v;
          continue;
        }
        const double y = uniform ? uniform_load(deg, t_) : load_of(v, t_);
        if (trace_row) (*trace_row)[v] = y;
        if (y < floor_t) {
          // (kept for the trace path, which reports every active load)
          if (adeg > 0 || trace_row) tail_work_[write++] = v;
          continue;
        }
        tail_work_[write++] = v;
        if (y >= thresholds_.threshold(v, t_)) {
          frozen_now_.push_back({v, t_});
        }
      }
      tail_work_.resize(write);
      for (const auto& [v, tf] : frozen_now_) {
        set_freeze(v, static_cast<std::uint32_t>(tf));
        leave_frontier(v);
        mark_frozen(v);
      }
      announce(frozen_now_, kNoRemovals);
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
      ++result.tail_iterations;
    }
  }

  [[nodiscard]] std::size_t phase_iterations(double d, std::size_t m) const {
    if (o_.paper_iteration_schedule) {
      const double raw = std::log(static_cast<double>(m)) /
                         (10.0 * std::log(5.0));
      return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
    }
    // Section 4.2 pacing: enough iterations that d (1-eps)^I <= d^beta.
    const double needed = (1.0 - o_.beta) * std::log(d) /
                          -std::log1p(-o_.eps);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(needed)));
  }

  const Graph& g_;
  const MatchingMpcOptions& o_;
  std::size_t n_;
  /// Alive == still in G[V'] (not removed as heavy). Frozen vertices stay
  /// alive; only heavy removals kill.
  ResidualGraph residual_;
  /// Active == alive and unfrozen — the simulation frontier. Kept in sync
  /// at every freeze/removal.
  ActiveSet active_;
  /// Second-level compaction: per-vertex active/frozen neighbor partition
  /// over residual_, updated by the freeze/removal batch walks.
  ActiveArcs active_arcs_;
  /// Batched T_{v,t} draws (per-vertex first-level mix cached once).
  ThresholdBatch thresholds_;
  std::size_t machines_ = 0;
  std::size_t words_ = 0;
  std::optional<mpc::Engine> engine_;
  /// Round-level checkpoint providers for the engine's fault recovery;
  /// engaged only when a FaultPlan is attached (see constructor).
  std::optional<fault::CheckpointRegistry> registry_;

  std::vector<std::uint32_t> home_;
  double w0_ = 0.0;
  mutable std::vector<double> weight_cache_;
  std::uint64_t t_ = 0;
  std::size_t last_phase_iterations_ = 0;
  /// Phase-loop cursor state, promoted to members so the "loop" durable
  /// provider can serialize them at safe points (see register_loop_state).
  double d_ = 0.0;
  Rng phase_rng_;
  MatchingMpcResult result_;
  std::vector<std::uint32_t> freeze_at_;
  /// Saturating 16-bit mirror of freeze_at_ — the gather target of the hot
  /// load/output scans (see set_freeze; exact wherever the capping
  /// iteration is below 0xffff, which the scans check).
  std::vector<std::uint16_t> freeze16_;
  std::vector<std::uint8_t> freeze8_;
  std::vector<char> removed_;

  // Dirty-load bookkeeping (see DESIGN.md). The alive-active-neighbor
  // counts live in active_arcs_.
  std::vector<double> y_old_cache_;
  std::vector<double> load_cache_;
  std::vector<std::uint64_t> load_stamp_;
  std::vector<std::uint8_t> dirty_;

  // Per-phase scratch, dense-indexed and reused across phases (no O(n)
  // allocation after warm-up).
  std::vector<std::uint32_t> machine_of_;
  /// Per-vertex machine of the current phase — the neighbor-side lookup of
  /// the distribute loop (only read for currently active vertices, which
  /// were necessarily in the phase snapshot). The byte table is the
  /// primary filter (cache-resident); the word table confirms matches in
  /// the rare phases with more than 256 machines.
  std::vector<std::uint32_t> phase_machine_;
  std::vector<std::uint8_t> phase_machine8_;
  /// Per-iteration load estimates, frontier-indexed (the vectorized first
  /// pass of the freeze loop).
  std::vector<double> y_scratch_;
  /// Tail sweep worklist (see run_tail).
  std::vector<VertexId> tail_work_;
  /// Sequential partial sums of repsum_w_ (see repeated_sum).
  std::vector<double> repsum_;
  double repsum_w_ = 0.0;
  std::vector<std::uint32_t> local_deg_;
  std::vector<double> local_frozen_sum_;
  std::optional<CsrScratch> local_adj_;
  std::vector<std::pair<VertexId, VertexId>> local_pairs_;
  /// Per-phase scratch: matched frontier arcs as (dense index, upper
  /// neighbor), collected sequentially by the distribute scan and streamed
  /// to the engine afterwards (see run_phase).
  std::vector<std::pair<std::uint32_t, VertexId>> matched_uppers_;
  std::vector<std::size_t> machine_edges_;
  std::vector<std::pair<VertexId, std::uint64_t>> frozen_this_phase_;
  std::vector<VertexId> newly_frozen_;
  std::vector<VertexId> removed_now_;
  std::vector<std::pair<VertexId, std::uint64_t>> frozen_now_;
  /// Vertices frozen at the previous phase's boundary (freeze iteration ==
  /// the next phase's t_start): the old full scan still considered them
  /// for heavy removal one more time.
  std::vector<VertexId> boundary_frozen_;
  const std::vector<VertexId> kNoRemovals;

  // Persistent announce staging (one vector per home machine).
  std::vector<std::vector<Word>> announce_parts_;
  std::vector<std::uint32_t> announce_touched_;
  // Parallel-backend scratch (engine_->backend().parallel() only): cached
  // active-upper spans from the sequential pre-pass, slot-private
  // distribute collections (merged slot-ascending), and the sharded
  // staging for the dense-path distribute pushes and announce records.
  std::vector<std::span<const VertexId>> upper_spans_;
  std::vector<std::vector<std::pair<std::uint32_t, VertexId>>> slot_matched_;
  std::vector<std::vector<std::pair<VertexId, VertexId>>> slot_pairs_;
  std::vector<std::size_t> slot_counts_;
  std::vector<std::size_t> slot_frontier_;
  mpc::StageShards distribute_shards_;
  mpc::StageShards announce_shards_;
  // Persistent sender-bucket staging for the distribute records and the
  // freeze reports (one vector per machine, touched-only clearing; the
  // two uses never overlap in time).
  std::vector<std::vector<Word>> record_parts_;
  std::vector<std::uint32_t> record_touched_;

  /// Flat neighbor-id CSR over the full graph (see constructor): the
  /// 4-byte stream behind the load rescans and departure walks.
  std::vector<std::size_t> nbr_off_;
  std::unique_ptr<VertexId[]> nbr_ids_;
};

}  // namespace

MatchingMpcResult matching_mpc(const Graph& g,
                               const MatchingMpcOptions& options) {
  MatchingMpcRun run(g, options);
  return run.run();
}

}  // namespace mpcg
