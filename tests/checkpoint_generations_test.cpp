// Verified checkpoint generations: the registry's generation ring, rot
// injection (kCorruptCheckpoint), restore-time verification with fallback
// to an older generation, and the typed all-generations-bad error.
//
// Registry-level tests pin the ring semantics (a fallback restore hands
// back the older image bit-identically, including across a provider
// resize); engine-level tests pin the recovery contract (a run whose
// newest checkpoint image rots before a restore still ends bit-identical
// to the fault-free run, charging the extra replays and a
// checkpoint_fallbacks tick; a run that loses every generation dies with
// a CheckpointError naming the machine and round).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/mis_mpc.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using fault::CheckpointError;
using fault::CheckpointRegistry;
using testing::make_family;
using Word = CheckpointRegistry::Word;

// Registers `state` as a provider that serializes its words verbatim.
void register_vector(CheckpointRegistry& reg, const char* name,
                     std::vector<Word>& state) {
  reg.register_state(
      name,
      [&state](std::vector<Word>& out) {
        out.insert(out.end(), state.begin(), state.end());
      },
      [&state](std::span<const Word> in) {
        state.assign(in.begin(), in.end());
      });
}

TEST(CheckpointGenerations, RingRetainsTwoGenerationsByDefault) {
  CheckpointRegistry reg;
  EXPECT_EQ(reg.generations(), CheckpointRegistry::kDefaultGenerations);
  EXPECT_EQ(CheckpointRegistry::kDefaultGenerations, 2U);
  std::vector<Word> state = {1, 2, 3};
  register_vector(reg, "s", state);
  reg.capture(1);
  reg.capture(2);
  reg.capture(3);
  EXPECT_EQ(reg.generations_held(), 2U);  // oldest evicted
  EXPECT_EQ(reg.generation_round(0), 3U);
  EXPECT_EQ(reg.generation_round(1), 2U);
  // Capacity 0 clamps to 1 (a ring must hold something).
  EXPECT_EQ(CheckpointRegistry(0).generations(), 1U);
}

TEST(CheckpointGenerations, CorruptGenerationFlipsDetectably) {
  CheckpointRegistry reg;
  std::vector<Word> state = {10, 20, 30, 40};
  register_vector(reg, "s", state);
  reg.capture(1);
  EXPECT_TRUE(reg.generation_ok(0));
  const std::size_t flipped = reg.corrupt_generation(0, 7, 1, 0);
  EXPECT_GE(flipped, 1U);
  EXPECT_LE(flipped, 3U);
  EXPECT_FALSE(reg.generation_ok(0));
}

TEST(CheckpointGenerations, FallbackRestoresOlderImageBitIdentically) {
  CheckpointRegistry reg;
  std::vector<Word> state = {1, 2, 3, 4, 5};
  register_vector(reg, "s", state);
  const std::vector<Word> older = state;
  reg.capture(3);
  state = {6, 7, 8, 9, 10};
  reg.capture(5);
  // Rot the newest image: restore() must skip it and reinstate the older
  // generation exactly.
  reg.corrupt_generation(0, 5, 0, 0);
  reg.restore();
  EXPECT_EQ(state, older);
  EXPECT_EQ(reg.fallback_restores(), 1U);
  EXPECT_EQ(reg.last_restored_round(), 3U);
}

TEST(CheckpointGenerations, FallbackSpansAProviderResize) {
  // Frontier-like providers grow and shrink between captures; the older
  // image has a different length and must still reinstate bit-identically.
  CheckpointRegistry reg;
  std::vector<Word> state = {11, 12, 13};
  register_vector(reg, "frontier", state);
  const std::vector<Word> older = state;
  reg.capture(2);
  state = {21, 22, 23, 24, 25, 26, 27};  // grew
  reg.capture(6);
  reg.corrupt_generation(0, 6, 0, 0);
  reg.restore();
  EXPECT_EQ(state, older);
  EXPECT_EQ(state.size(), 3U);
  EXPECT_EQ(reg.fallback_restores(), 1U);
}

TEST(CheckpointGenerations, AllGenerationsBadThrowsTypedError) {
  CheckpointRegistry reg;
  std::vector<Word> state = {1, 2, 3};
  register_vector(reg, "s", state);
  reg.capture(1);
  state = {4, 5, 6};
  reg.capture(2);
  reg.corrupt_generation(0, 1, 0, 0);
  reg.corrupt_generation(1, 2, 0, 0);
  try {
    reg.restore();
    FAIL() << "restore with every generation rotted did not throw";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("all 2 retained generation(s) fail verification"),
              std::string::npos)
        << what;
    // The error names which provider image(s) rotted — the first thing an
    // operator needs to know when a restore dies.
    EXPECT_NE(what.find("rotted provider(s): s"), std::string::npos) << what;
  }
  // The live state was never touched by the failed restore.
  EXPECT_EQ(state, (std::vector<Word>{4, 5, 6}));
}

TEST(CheckpointGenerations, AllGenerationsBadNamesEveryRottedProvider) {
  // Multi-provider registry: the typed error's provider list must cover
  // every provider whose image fails verification, across the whole ring.
  CheckpointRegistry reg;
  std::vector<Word> alpha = {1, 2, 3, 4};
  std::vector<Word> beta = {5, 6, 7, 8};
  register_vector(reg, "alpha", alpha);
  register_vector(reg, "beta", beta);
  reg.capture(1);
  reg.capture(2);
  reg.corrupt_generation(0, 11, 0, 0);
  reg.corrupt_generation(1, 12, 0, 0);
  std::vector<std::string> rotted = reg.rotted_providers(0);
  for (const auto& name : reg.rotted_providers(1)) {
    if (std::find(rotted.begin(), rotted.end(), name) == rotted.end()) {
      rotted.push_back(name);
    }
  }
  ASSERT_FALSE(rotted.empty());
  try {
    reg.restore();
    FAIL() << "restore with every generation rotted did not throw";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rotted provider(s): "), std::string::npos) << what;
    for (const auto& name : rotted) {
      EXPECT_NE(what.find(name), std::string::npos)
          << what << " does not name rotted provider " << name;
    }
  }
}

TEST(CheckpointGenerations, RecaptureNewestRepairsRot) {
  CheckpointRegistry reg;
  std::vector<Word> state = {7, 8, 9};
  register_vector(reg, "s", state);
  reg.capture(4);
  reg.corrupt_generation(0, 4, 0, 0);
  ASSERT_FALSE(reg.generation_ok(0));
  reg.recapture_newest();
  EXPECT_TRUE(reg.generation_ok(0));
  EXPECT_EQ(reg.generation_round(0), 4U);  // round tag kept
  reg.restore();
  EXPECT_EQ(state, (std::vector<Word>{7, 8, 9}));
}

// ------------------------------------------------------- engine recovery

TEST(CheckpointGenerations, EngineFallbackRecoversBitIdentically) {
  // Round 2's crash seeds an older generation; in round 5 the newest image
  // rots *before* the crash forces a restore, so recovery must fall back,
  // charge the extra replays, and still end bit-identical to the
  // fault-free run.
  const Graph g = make_family("gnp_sparse", 512, 23);
  MisMpcOptions opt;
  opt.seed = 23;
  const auto clean = mis_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 6U);
  fault::FaultPlan plan;
  plan.add_crash(0, 2);
  plan.add_corrupt_checkpoint(1, 5);
  plan.add_crash(0, 5);
  MisMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  const auto r = mis_mpc(g, faulty);
  EXPECT_EQ(r.mis, clean.mis);
  EXPECT_EQ(r.rank_phases, clean.rank_phases);
  EXPECT_EQ(r.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(r.metrics.total_words, clean.metrics.total_words);
  EXPECT_GE(r.metrics.checkpoint_fallbacks, 1U);
  // The fallback owes the rounds between the generation tags (2 -> 5) on
  // top of the two crash replays.
  EXPECT_GE(r.metrics.rounds_replayed, 2U + 3U);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST(CheckpointGenerations, EngineAllGenerationsBadNamesMachineAndRound) {
  // Two rot events in the restore round walk the whole ring (newest, then
  // the only older generation); the crash then finds no verified image.
  const Graph g = make_family("gnp_sparse", 512, 23);
  fault::FaultPlan plan;
  plan.add_crash(0, 2);
  plan.add_corrupt_checkpoint(0, 5);
  plan.add_corrupt_checkpoint(1, 5);
  plan.add_crash(0, 5);
  MisMpcOptions opt;
  opt.seed = 23;
  opt.fault_plan = &plan;
  opt.integrity = true;
  try {
    (void)mis_mpc(g, opt);
    FAIL() << "restore with every generation rotted did not throw";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("machine 0"), std::string::npos) << what;
    EXPECT_NE(what.find("round 5"), std::string::npos) << what;
    EXPECT_NE(
        what.find("retained checkpoint generation(s) fail verification"),
        std::string::npos)
        << what;
    EXPECT_NE(what.find("rotted provider(s): "), std::string::npos) << what;
    EXPECT_NE(what.find("unrecoverable"), std::string::npos) << what;
  }
}

TEST(CheckpointGenerations, LatentRotIsHarmlessOnceSuperseded) {
  // Rot in a round with no restore is outrun by the next capture: the
  // rotted image ages out of the ring before anything reads it.
  const Graph g = make_family("gnp_sparse", 512, 29);
  MisMpcOptions opt;
  opt.seed = 29;
  const auto clean = mis_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 6U);
  fault::FaultPlan plan;
  plan.add_crash(0, 2);
  plan.add_corrupt_checkpoint(0, 4);  // latent: nothing restores here
  plan.add_crash(1, 6);
  MisMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  const auto r = mis_mpc(g, faulty);
  EXPECT_EQ(r.mis, clean.mis);
  EXPECT_EQ(r.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(r.metrics.checkpoint_fallbacks, 0U);
}

}  // namespace
}  // namespace mpcg
