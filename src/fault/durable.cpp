#include "fault/durable.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>

#include "fault/checkpoint.h"
#include "util/fnv.h"

namespace mpcg::fault {

namespace {

using Word = std::uint64_t;

/// The byte string "MPCGCKPT" read as one little-endian word.
constexpr Word kMagic = 0x54504b434743504dULL;
constexpr Word kVersion = 1;

/// Guard rails for parsing garbage: any well-formed file the library
/// writes stays far below these.
constexpr Word kMaxScopeBytes = 1 << 16;
constexpr Word kMaxNameBytes = 1 << 12;
constexpr Word kMaxSections = 1 << 12;

std::size_t padded_words(std::size_t bytes) { return (bytes + 7) / 8; }

void append_string(std::vector<Word>& out, const std::string& s) {
  out.push_back(s.size());
  const std::size_t base = out.size();
  out.resize(base + padded_words(s.size()), 0);
  std::memcpy(out.data() + base, s.data(), s.size());
}

[[noreturn]] void bad_file(const std::string& path, const std::string& why) {
  throw CheckpointError("durable checkpoint " + path + ": " + why);
}

/// Bounds-checked word cursor over the file body (trailer excluded).
struct Cursor {
  const std::string& path;
  std::span<const Word> words;
  std::size_t at = 0;

  Word take() {
    if (at >= words.size()) bad_file(path, "truncated checkpoint file");
    return words[at++];
  }
  std::span<const Word> take_span(std::size_t count) {
    if (count > words.size() - at) {
      bad_file(path, "truncated checkpoint file");
    }
    const auto s = words.subspan(at, count);
    at += count;
    return s;
  }
  std::string take_string(Word max_bytes) {
    const Word bytes = take();
    if (bytes > max_bytes) bad_file(path, "malformed string length");
    const auto body = take_span(padded_words(bytes));
    std::string s(bytes, '\0');
    std::memcpy(s.data(), body.data(), bytes);
    return s;
  }
};

}  // namespace

std::size_t write_checkpoint_file(const std::string& path, std::uint64_t seq,
                                  std::uint64_t round,
                                  const std::string& scope,
                                  const std::vector<DurableSection>& sections) {
  // Only the header is materialized; payloads stream straight from the
  // sections into the stdio buffer, and the whole-file trailer is folded
  // incrementally in the same pass. A persist therefore never builds a
  // second in-memory copy of the provider state (the naive
  // concatenate-then-digest version cost ~2x the payload bytes in copies
  // per safe point — visible in E06_DiskCheckpointOverhead).
  std::vector<Word> header;
  header.push_back(kMagic);
  header.push_back(kVersion);
  header.push_back(seq);
  header.push_back(round);
  append_string(header, scope);
  header.push_back(sections.size());
  for (const DurableSection& s : sections) {
    append_string(header, s.name);
    header.push_back(s.payload.size());
    header.push_back(Fnv::digest(s.payload));
  }

  std::uint64_t trailer = Fnv::kOffset;
  for (const Word w : header) trailer = Fnv::fold(trailer, w);
  std::size_t total = header.size();
  for (const DurableSection& s : sections) {
    for (const Word w : s.payload) trailer = Fnv::fold(trailer, w);
    total += s.payload.size();
  }
  total += 1;  // trailer word

  // Temp file + atomic rename: a reader never sees a torn write.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) bad_file(tmp, "cannot open for writing");
  std::size_t wrote =
      std::fwrite(header.data(), sizeof(Word), header.size(), f);
  for (const DurableSection& s : sections) {
    if (s.payload.empty()) continue;  // fwrite forbids a null source
    wrote += std::fwrite(s.payload.data(), sizeof(Word), s.payload.size(), f);
  }
  wrote += std::fwrite(&trailer, sizeof(Word), 1, f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != total || !flushed) {
    std::remove(tmp.c_str());
    bad_file(tmp, "short write");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    bad_file(path, "cannot publish (rename failed)");
  }
  return total;
}

std::size_t write_checkpoint_file(const std::string& path,
                                  const DurableCheckpoint& ckpt) {
  return write_checkpoint_file(path, ckpt.seq, ckpt.round, ckpt.scope,
                               ckpt.sections);
}

DurableCheckpoint read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) bad_file(path, "cannot open for reading");
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (bytes < 0 || bytes % 8 != 0 || static_cast<std::size_t>(bytes) < 7 * 8) {
    std::fclose(f);
    bad_file(path, "truncated checkpoint file");
  }
  std::vector<Word> words(static_cast<std::size_t>(bytes) / 8);
  const std::size_t got = std::fread(words.data(), sizeof(Word),
                                     words.size(), f);
  std::fclose(f);
  if (got != words.size()) bad_file(path, "short read");

  if (words.front() != kMagic) bad_file(path, "bad magic");
  if (words[1] != kVersion) {
    bad_file(path, "unsupported checkpoint version " +
                       std::to_string(words[1]) + " (want " +
                       std::to_string(kVersion) + ")");
  }

  // Parse the body (everything but the trailer word).
  Cursor c{path, std::span<const Word>(words).first(words.size() - 1), 2};
  DurableCheckpoint ckpt;
  ckpt.seq = c.take();
  ckpt.round = c.take();
  ckpt.scope = c.take_string(kMaxScopeBytes);
  const Word nsections = c.take();
  if (nsections > kMaxSections) bad_file(path, "malformed section count");
  struct Header {
    std::string name;
    Word payload_words;
    Word fnv;
  };
  std::vector<Header> headers;
  headers.reserve(nsections);
  for (Word i = 0; i < nsections; ++i) {
    Header h;
    h.name = c.take_string(kMaxNameBytes);
    h.payload_words = c.take();
    h.fnv = c.take();
    headers.push_back(std::move(h));
  }
  std::string rotted;
  const std::string round_tag = " (round " + std::to_string(ckpt.round) + ")";
  for (Header& h : headers) {
    const auto payload = c.take_span(h.payload_words);
    DurableSection s;
    s.name = std::move(h.name);
    s.payload.assign(payload.begin(), payload.end());
    if (Fnv::digest(s.payload) != h.fnv) {
      rotted += rotted.empty() ? "" : ", ";
      rotted += s.name;
    }
    ckpt.sections.push_back(std::move(s));
  }
  if (c.at != c.words.size()) bad_file(path, "trailing garbage" + round_tag);
  if (!rotted.empty()) {
    bad_file(path, "provider(s) failing verification: " + rotted + round_tag);
  }
  if (Fnv::digest({words.data(), words.size() - 1}) != words.back()) {
    bad_file(path, "whole-file digest mismatch" + round_tag);
  }
  return ckpt;
}

DurableRing::DurableRing(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw CheckpointError("durable checkpoint dir " + dir_ +
                          ": cannot create (" + ec.message() + ")");
  }
  rescan();
}

std::string DurableRing::slot_path(std::size_t slot) const {
  return dir_ + "/ckpt-" + std::to_string(slot) + ".mpcg";
}

void DurableRing::rescan() {
  // Peek the seq word of each slot header; an unreadable or garbage slot
  // counts as seq 0 so the next save overwrites it first.
  Word seqs[kSlots] = {0, 0};
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    std::FILE* f = std::fopen(slot_path(slot).c_str(), "rb");
    if (f == nullptr) continue;
    Word head[3] = {0, 0, 0};
    const std::size_t got = std::fread(head, sizeof(Word), 3, f);
    std::fclose(f);
    if (got == 3 && head[0] == kMagic && head[1] == kVersion) {
      seqs[slot] = head[2];
    }
  }
  next_seq_ = std::max(seqs[0], seqs[1]) + 1;
  write_slot_ = seqs[0] <= seqs[1] ? 0 : 1;
}

void DurableRing::reset() {
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    std::remove(slot_path(slot).c_str());
    std::remove((slot_path(slot) + ".tmp").c_str());
  }
  next_seq_ = 1;
  write_slot_ = 0;
}

std::size_t DurableRing::save(std::uint64_t round, const std::string& scope,
                              const std::vector<DurableSection>& sections) {
  const std::size_t words = write_checkpoint_file(
      slot_path(write_slot_), next_seq_, round, scope, sections);
  ++next_seq_;
  write_slot_ = (write_slot_ + 1) % kSlots;
  return words;
}

std::optional<DurableLoad> DurableRing::load(const std::string& scope) const {
  std::optional<DurableCheckpoint> best;
  std::string errors;
  std::size_t existing = 0;
  std::size_t failed = 0;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    if (!std::filesystem::exists(slot_path(slot))) continue;
    ++existing;
    try {
      DurableCheckpoint ckpt = read_checkpoint_file(slot_path(slot));
      if (ckpt.scope != scope) continue;  // another run's leftovers
      if (!best || ckpt.seq > best->seq) best = std::move(ckpt);
    } catch (const CheckpointError& e) {
      ++failed;
      errors += errors.empty() ? "" : "; ";
      errors += e.what();
    }
  }
  if (best) {
    DurableLoad loaded;
    loaded.checkpoint = std::move(*best);
    loaded.fallback = failed != 0;
    return loaded;
  }
  if (failed != 0) {
    throw CheckpointError(
        "no loadable checkpoint generation (" + std::to_string(failed) +
        " of " + std::to_string(existing) +
        " on-disk generation(s) fail verification): " + errors);
  }
  return std::nullopt;  // nothing on disk for this scope: fresh start
}

}  // namespace mpcg::fault
