#include "baselines/israeli_itai.h"

#include <limits>

#include "util/rng.h"

namespace mpcg {

IsraeliItaiResult israeli_itai_matching(const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  IsraeliItaiResult result;
  std::vector<char> matched(n, 0);
  constexpr VertexId kNone = std::numeric_limits<VertexId>::max();

  bool progress_possible = true;
  while (progress_possible) {
    const std::uint64_t round = result.rounds;
    // Propose.
    std::vector<VertexId> proposal(n, kNone);
    progress_possible = false;
    for (VertexId v = 0; v < n; ++v) {
      if (matched[v]) continue;
      // Collect unmatched neighbors; pick one uniformly via the stateless
      // per-(vertex, round) randomness.
      std::size_t count = 0;
      for (const Arc& a : g.arcs(v)) {
        if (!matched[a.to]) ++count;
      }
      if (count == 0) continue;
      progress_possible = true;
      std::size_t pick = static_cast<std::size_t>(
          stateless_uniform(seed, v, round) * static_cast<double>(count));
      if (pick >= count) pick = count - 1;
      for (const Arc& a : g.arcs(v)) {
        if (!matched[a.to]) {
          if (pick == 0) {
            proposal[v] = a.to;
            break;
          }
          --pick;
        }
      }
    }
    if (!progress_possible) break;

    // Accept: lowest-id proposer per vertex.
    std::vector<VertexId> accepted(n, kNone);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId u = proposal[v];
      if (u == kNone) continue;
      if (accepted[u] == kNone || v < accepted[u]) accepted[u] = v;
    }
    // Match mutual pairs (proposer v accepted by u).
    for (VertexId u = 0; u < n; ++u) {
      const VertexId v = accepted[u];
      if (v == kNone || matched[u] || matched[v]) continue;
      matched[u] = 1;
      matched[v] = 1;
      result.matching.push_back(g.find_edge(u, v));
    }
    ++result.rounds;
  }
  return result;
}

}  // namespace mpcg
