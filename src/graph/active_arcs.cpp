#include "graph/active_arcs.h"

#include "util/memory.h"

namespace mpcg {

ActiveArcs::ActiveArcs(ResidualGraph& residual, const ActiveSet& active)
    : residual_(&residual), active_(&active) {
  const Graph& g = residual.graph();
  const std::size_t n = g.num_vertices();
  // Contract: constructed while the frontier is still all-active, so every
  // alive neighbor is an active neighbor and no list needs materializing.
  active_deg_.resize(n);
  stale_.assign(n, 0);
  offsets_.resize(n + 1);
  active_end_.assign(n, kLazy);
  upper_begin_.assign(n, 0);
  frozen_end_.assign(n, 0);
  std::size_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = cursor;
    active_deg_[v] = static_cast<std::uint32_t>(residual.residual_degree(v));
    cursor += g.degree(v);
  }
  offsets_[n] = cursor;
}

void ActiveArcs::ensure_buffers() {
  if (active_buf_ == nullptr && offsets_.back() > 0) {
    active_buf_ = std::make_unique_for_overwrite<VertexId[]>(offsets_.back());
    frozen_buf_ = std::make_unique_for_overwrite<VertexId[]>(offsets_.back());
    advise_huge_pages(active_buf_.get(), offsets_.back() * sizeof(VertexId));
    advise_huge_pages(frozen_buf_.get(), offsets_.back() * sizeof(VertexId));
  }
}

void ActiveArcs::materialize(VertexId v) {
  ensure_buffers();
  const std::size_t begin = offsets_[v];
  std::size_t active_write = begin;
  std::size_t frozen_write = begin;
  std::size_t upper = begin;
  for (const Arc& a : residual_->alive_arcs(v)) {
    if (active_->active(a.to)) {
      if (a.to <= v) upper = active_write + 1;
      active_buf_[active_write++] = a.to;
    } else {
      frozen_buf_[frozen_write++] = a.to;
    }
  }
  active_end_[v] = active_write;
  upper_begin_[v] = upper;
  frozen_end_[v] = frozen_write;
  stale_[v] = 0;
}

void ActiveArcs::compact(VertexId v) {
  const std::size_t begin = offsets_[v];
  // The frozen list only exists for the consumers of an *active* vertex
  // (the y_old rescan); once v has left the frontier its lists are walked
  // at most once more, by the departure notification, which reads only the
  // active side — so a departed vertex's compaction drops its departed
  // neighbors instead of merging them over.
  const bool keep_frozen = active_->active(v);
  moved_.clear();
  if (stale_[v] & kActiveStale) {
    std::size_t write = begin;
    std::size_t upper = begin;
    for (std::size_t read = begin; read < active_end_[v]; ++read) {
      const VertexId u = active_buf_[read];
      if (active_->active(u)) {
        if (u <= v) upper = write + 1;
        active_buf_[write++] = u;
      } else if (keep_frozen && residual_->alive(u)) {
        moved_.push_back(u);  // froze: joins the frozen list below
      }  // else: removed (or v departed) — drops from the partition
    }
    active_end_[v] = write;
    upper_begin_[v] = upper;
  }
  const bool frozen_stale = (stale_[v] & kFrozenStale) != 0;
  if (!moved_.empty() || (frozen_stale && keep_frozen)) {
    // Rebuild the frozen list as a merge of the surviving old entries and
    // the just-departed actives; both inputs are ascending (the old list by
    // invariant, the moved entries as a subsequence of the active list), so
    // the result keeps ascending id order.
    frozen_scratch_.assign(frozen_buf_.get() + begin,
                           frozen_buf_.get() + frozen_end_[v]);
    std::size_t write = begin;
    std::size_t mi = 0;
    for (const VertexId u : frozen_scratch_) {
      if (frozen_stale && !residual_->alive(u)) continue;
      while (mi < moved_.size() && moved_[mi] < u) {
        frozen_buf_[write++] = moved_[mi++];
      }
      frozen_buf_[write++] = u;
    }
    while (mi < moved_.size()) frozen_buf_[write++] = moved_[mi++];
    frozen_end_[v] = write;
  }
  stale_[v] = 0;
}

void ActiveArcs::notify_left(std::span<const VertexId> departed) {
  for (const VertexId x : departed) {
    for (const VertexId u : active_neighbors(x)) {
      // x's list is only filtered lazily, so on the clean path it can
      // still hold same-batch departures — skip them here to keep the
      // "no cross-marks between batch members" contract exact.
      if (!active_->active(u)) continue;
      neighbor_left_frontier(u);
    }
  }
}

}  // namespace mpcg
