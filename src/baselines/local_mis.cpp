#include "baselines/local_mis.h"

#include <algorithm>

#include "util/rng.h"

namespace mpcg {

LocalMisState::LocalMisState(const Graph& g, std::vector<char> alive,
                             std::uint64_t seed)
    : g_(g), seed_(seed), alive_(std::move(alive)),
      in_mis_(g.num_vertices(), 0), p_(g.num_vertices(), 0.5) {
  alive_.resize(g.num_vertices(), 1);
  alive_count_ = static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char{1}));
}

std::vector<VertexId> LocalMisState::step() {
  const std::size_t n = g_.num_vertices();
  const std::uint64_t t = iteration_++;

  // Mark with probability p_v (stateless randomness).
  std::vector<char> marked(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (alive_[v] && stateless_uniform(seed_, v, t) < p_[v]) marked[v] = 1;
  }

  // Effective degrees for the desire-level update (computed before
  // removals, as in the original dynamics).
  std::vector<double> effective(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (!alive_[v]) continue;
    double d = 0.0;
    for (const Arc& a : g_.arcs(v)) {
      if (alive_[a.to]) d += p_[a.to];
    }
    effective[v] = d;
  }

  // Join: marked with no marked alive neighbor.
  std::vector<VertexId> joined;
  for (VertexId v = 0; v < n; ++v) {
    if (!alive_[v] || !marked[v]) continue;
    bool lonely = true;
    for (const Arc& a : g_.arcs(v)) {
      if (alive_[a.to] && marked[a.to]) {
        lonely = false;
        break;
      }
    }
    if (lonely) joined.push_back(v);
  }
  for (const VertexId v : joined) {
    in_mis_[v] = 1;
    if (alive_[v]) {
      alive_[v] = 0;
      --alive_count_;
    }
    for (const Arc& a : g_.arcs(v)) {
      if (alive_[a.to]) {
        alive_[a.to] = 0;
        --alive_count_;
      }
    }
  }

  // Desire-level update for survivors.
  for (VertexId v = 0; v < n; ++v) {
    if (!alive_[v]) continue;
    p_[v] = effective[v] >= 2.0 ? p_[v] / 2.0 : std::min(2.0 * p_[v], 0.5);
  }
  return joined;
}

std::size_t LocalMisState::alive_edges() const {
  std::size_t count = 0;
  for (const Edge& e : g_.edges()) {
    if (alive_[e.u] && alive_[e.v]) ++count;
  }
  return count;
}

std::size_t LocalMisState::max_alive_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    if (!alive_[v]) continue;
    std::size_t d = 0;
    for (const Arc& a : g_.arcs(v)) {
      if (alive_[a.to]) ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

LocalMisResult local_mis(const Graph& g, std::uint64_t seed) {
  LocalMisState state(g, std::vector<char>(g.num_vertices(), 1), seed);
  LocalMisResult result;
  // The dynamics terminate in O(log n) iterations w.h.p.; the hard cap
  // below only guards tests against pathological seeds, finishing any
  // stragglers greedily (still a valid MIS).
  std::size_t max_iterations = 64;
  for (std::size_t n = g.num_vertices(); n > 1; n /= 2) max_iterations += 32;
  while (state.alive_count() > 0 && state.iterations() < max_iterations) {
    const auto joined = state.step();
    for (const VertexId v : joined) result.mis.push_back(v);
  }
  if (state.alive_count() > 0) {
    std::vector<char> alive = state.alive();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!alive[v]) continue;
      result.mis.push_back(v);
      alive[v] = 0;
      for (const Arc& a : g.arcs(v)) alive[a.to] = 0;
    }
  }
  result.iterations = state.iterations();
  return result;
}

}  // namespace mpcg
