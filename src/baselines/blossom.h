// Edmonds' blossom algorithm: exact maximum matching in general graphs.
//
// This is the ground-truth oracle for every approximation-ratio experiment
// (the paper's (2+eps) and (1+eps) guarantees are measured against nu(G)
// computed here). O(V^3); intended for graphs up to a few thousand
// vertices, which is ample for ratio measurements.
#ifndef MPCG_BASELINES_BLOSSOM_H
#define MPCG_BASELINES_BLOSSOM_H

#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Maximum matching (edge ids) of g.
[[nodiscard]] std::vector<EdgeId> blossom_maximum_matching(const Graph& g);

/// Just the size nu(G) of a maximum matching.
[[nodiscard]] std::size_t maximum_matching_size(const Graph& g);

}  // namespace mpcg

#endif  // MPCG_BASELINES_BLOSSOM_H
