#include <numeric>

#include <gtest/gtest.h>

#include "mpc/engine.h"
#include "mpc/partition.h"
#include "mpc/primitives.h"

namespace mpcg::mpc {
namespace {

Engine small_engine(std::size_t machines = 4, std::size_t words = 64,
                    bool strict = true) {
  return Engine(Config{machines, words, strict});
}

TEST(Engine, DeliversInSenderOrder) {
  Engine e = small_engine();
  e.push(2, 0, Word{22});
  e.push(1, 0, Word{11});
  e.push(1, 0, Word{12});
  e.exchange();
  const auto& in = e.inbox(0);
  ASSERT_EQ(in.size(), 3U);
  EXPECT_EQ(in[0], 11U);  // sender 1 before sender 2
  EXPECT_EQ(in[1], 12U);
  EXPECT_EQ(in[2], 22U);
}

TEST(Engine, RoundsCount) {
  Engine e = small_engine();
  EXPECT_EQ(e.metrics().rounds, 0U);
  e.exchange();
  e.exchange();
  EXPECT_EQ(e.metrics().rounds, 2U);
}

TEST(Engine, SpanPush) {
  Engine e = small_engine();
  const std::vector<Word> payload{1, 2, 3};
  e.push(0, 1, payload);
  e.exchange();
  EXPECT_EQ(e.inbox(1).size(), 3U);
}

TEST(Engine, StrictSendOverflowThrows) {
  Engine e = small_engine(2, 4, true);
  for (int i = 0; i < 5; ++i) e.push(0, 1, Word{0});
  EXPECT_THROW(e.exchange(), CapacityError);
}

TEST(Engine, StrictReceiveOverflowThrows) {
  Engine e = small_engine(4, 4, true);
  // Each sender within its budget, receiver over it.
  for (std::size_t from = 1; from < 4; ++from) {
    e.push(from, 0, Word{1});
    e.push(from, 0, Word{2});
  }
  EXPECT_THROW(e.exchange(), CapacityError);
}

TEST(Engine, NonStrictCountsViolations) {
  Engine e = small_engine(2, 4, false);
  for (int i = 0; i < 6; ++i) e.push(0, 1, Word{0});
  e.exchange();
  EXPECT_GE(e.metrics().violations, 1U);
  EXPECT_EQ(e.inbox(1).size(), 6U);  // still delivered for observability
}

TEST(Engine, PeakMetricsTrack) {
  Engine e = small_engine(3, 64);
  e.push(0, 1, Word{1});
  e.push(0, 2, Word{2});
  e.push(1, 2, Word{3});
  e.exchange();
  EXPECT_EQ(e.metrics().max_sent_words, 2U);      // machine 0 sent 2
  EXPECT_EQ(e.metrics().max_received_words, 2U);  // machine 2 received 2
  EXPECT_EQ(e.metrics().total_words, 3U);
}

TEST(Engine, NoteStorageEnforced) {
  Engine e = small_engine(2, 16, true);
  e.note_storage(0, 16);
  EXPECT_EQ(e.metrics().peak_storage_words, 16U);
  EXPECT_THROW(e.note_storage(1, 17), CapacityError);
}

TEST(Engine, RejectsZeroMachines) {
  EXPECT_THROW(Engine(Config{0, 8, true}), std::invalid_argument);
}

TEST(Engine, LargeClusterFlatPathKeepsInboxContract) {
  // Above the dense-representation limit the engine switches to flat
  // per-sender buffers with counting-sort delivery; the observable
  // contract (sender-ascending inbox order, metrics) must not change.
  const std::size_t m = 600;  // > kDenseMachineLimit
  Engine e(Config{m, 1 << 16, true});
  // Scattered single words from high and low senders, plus a span: the
  // inbox must concatenate by ascending sender, push order within.
  e.push(599, 0, Word{99});
  e.push(1, 0, Word{11});
  e.push(1, 0, Word{12});
  const std::vector<Word> span{21, 22, 23};
  e.push(2, 0, span);
  e.push(2, 5, Word{77});
  e.exchange();
  EXPECT_EQ(e.inbox(0),
            (std::vector<Word>{11, 12, 21, 22, 23, 99}));
  EXPECT_EQ(e.inbox(5), (std::vector<Word>{77}));
  EXPECT_EQ(e.metrics().rounds, 1U);
  EXPECT_EQ(e.metrics().max_sent_words, 4U);      // machine 2 sent 4
  EXPECT_EQ(e.metrics().max_received_words, 6U);  // machine 0 received 6
  EXPECT_EQ(e.metrics().total_words, 7U);
  EXPECT_EQ(e.metrics().peak_storage_words, 6U);

  // Second round on reused buffers: scattered traffic dense enough to
  // trigger the per-sender counting-sort path (words >= 2 * machines).
  std::vector<std::vector<Word>> expected(m);
  for (std::size_t i = 0; i < 3 * m; ++i) {
    const std::size_t to = (i * 7) % m;
    e.push(3, to, Word{i});
    expected[to].push_back(Word{i});
  }
  e.exchange();
  for (const std::size_t to : {0UL, 1UL, 7UL, 599UL}) {
    EXPECT_EQ(e.inbox(to), expected[to]) << "machine " << to;
  }
  EXPECT_EQ(e.metrics().rounds, 2U);
  EXPECT_EQ(e.metrics().max_sent_words, 3 * m);
}

TEST(Engine, LargeClusterStrictOverflowStillThrows) {
  Engine e(Config{600, 4, true});
  for (int i = 0; i < 5; ++i) e.push(0, 1, Word{0});
  EXPECT_THROW(e.exchange(), CapacityError);
}

TEST(Broadcast, SmallPayloadOneRound) {
  Engine e = small_engine(4, 64);
  const std::vector<Word> payload{42, 43};
  const auto out = broadcast(e, 1, payload);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(e.metrics().rounds, 1U);  // fanout covers all machines
}

TEST(Broadcast, LargePayloadUsesRelayTree) {
  // Payload of 32 words, budget 64 -> fanout 2: informed machines grow
  // 1 -> 3 -> 9, so 8 machines need 2 rounds (vs 1 for a small payload).
  Engine e = small_engine(8, 64);
  std::vector<Word> payload(32);
  std::iota(payload.begin(), payload.end(), 0);
  const auto out = broadcast(e, 0, payload);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(e.metrics().rounds, 2U);
  EXPECT_EQ(e.metrics().violations, 0U);
}

TEST(Broadcast, OversizedPayloadThrows) {
  Engine e = small_engine(2, 8);
  std::vector<Word> payload(9);
  EXPECT_THROW(broadcast(e, 0, payload), CapacityError);
}

TEST(Broadcast, NonRootOrigin) {
  Engine e = small_engine(5, 64);
  const std::vector<Word> payload{7};
  EXPECT_EQ(broadcast(e, 3, payload), payload);
}

TEST(GatherTo, ConcatenatesInMachineOrder) {
  Engine e = small_engine(3, 64);
  std::vector<std::vector<Word>> parts{{1}, {2, 3}, {4}};
  const auto gathered = gather_to(e, 1, parts);
  EXPECT_EQ(gathered, (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(GatherTo, ChargesRootStorage) {
  Engine e = small_engine(2, 8);
  std::vector<std::vector<Word>> parts{{1, 2, 3}, {4, 5}};
  gather_to(e, 0, parts);
  EXPECT_GE(e.metrics().peak_storage_words, 5U);
}

TEST(AllToAll, RoutesEverything) {
  Engine e = small_engine(3, 64);
  std::vector<std::vector<std::vector<Word>>> out(3,
      std::vector<std::vector<Word>>(3));
  out[0][1] = {1};
  out[1][2] = {2, 3};
  out[2][0] = {4};
  const auto in = all_to_all(e, out);
  EXPECT_EQ(in[0], (std::vector<Word>{4}));
  EXPECT_EQ(in[1], (std::vector<Word>{1}));
  EXPECT_EQ(in[2], (std::vector<Word>{2, 3}));
}

TEST(AllReduce, SumAndMax) {
  Engine e = small_engine(4, 64);
  EXPECT_EQ(all_reduce_sum(e, {1, 2, 3, 4}), 10U);
  EXPECT_EQ(all_reduce_max(e, {5, 9, 2, 9}), 9U);
}

TEST(Partition, RandomAssignmentInRange) {
  Rng rng(31);
  const auto assignment = random_vertex_partition(1000, 7, rng);
  ASSERT_EQ(assignment.size(), 1000U);
  for (const auto machine : assignment) EXPECT_LT(machine, 7U);
  const auto groups = group_by_machine(assignment, 7);
  std::size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 1000U);
}

TEST(Partition, RoughlyBalanced) {
  Rng rng(32);
  const auto assignment = random_vertex_partition(7000, 7, rng);
  const auto groups = group_by_machine(assignment, 7);
  for (const auto& grp : groups) {
    EXPECT_GT(grp.size(), 700U);
    EXPECT_LT(grp.size(), 1300U);
  }
}

TEST(Partition, HomeOfStable) {
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(home_of(v, 5, 9), home_of(v, 5, 9));
    EXPECT_LT(home_of(v, 5, 9), 5U);
  }
}

}  // namespace
}  // namespace mpcg::mpc
