// Model-sizing invariance: the *output* of the paper's algorithms is a
// pure function of (graph, seed) — cluster sizing (machine count, memory)
// only changes how the computation is laid out, never what it decides.
// This is a strong correctness property of the simulation: if a different
// machine count changed the MIS, some decision would be reading
// layout-dependent state it does not own.
#include <gtest/gtest.h>

#include "core/matching_mpc.h"
#include "core/mis_mpc.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(ModelInvariance, MisIndependentOfMachineCount) {
  const Graph g = make_family("gnp_dense", 400, 3);
  MisMpcOptions base;
  base.seed = 31;
  // Generous memory so every machine count below is feasible; the point
  // here is decision invariance, not sizing.
  base.words_per_machine = 1U << 20;
  base.gather_budget = 4 * g.num_vertices() / 2;
  const auto reference = mis_mpc(g, base);
  for (const std::size_t machines : {2U, 3U, 7U, 16U}) {
    MisMpcOptions opt = base;
    opt.num_machines = machines;
    EXPECT_EQ(mis_mpc(g, opt).mis, reference.mis) << machines;
  }
}

TEST(ModelInvariance, MisIndependentOfMemoryBudget) {
  const Graph g = make_family("power_law", 400, 5);
  MisMpcOptions base;
  base.seed = 33;
  const auto reference = mis_mpc(g, base);
  for (const std::size_t words : {4096U, 8192U, 1U << 20}) {
    MisMpcOptions opt = base;
    opt.words_per_machine = words;
    // Note: gather_budget defaults to words/2, which *is* a decision
    // parameter; pin it so only the layout varies.
    opt.gather_budget = 4 * g.num_vertices() / 2;
    MisMpcOptions ref_opt = base;
    ref_opt.gather_budget = opt.gather_budget;
    EXPECT_EQ(mis_mpc(g, opt).mis, mis_mpc(g, ref_opt).mis) << words;
  }
}

TEST(ModelInvariance, MatchingIndependentOfMemoryBudget) {
  const Graph g = make_family("gnp_sparse", 400, 7);
  MatchingMpcOptions base;
  base.eps = 0.1;
  base.seed = 35;
  const auto reference = matching_mpc(g, base);
  for (const std::size_t words : {8192U, 1U << 15, 1U << 20}) {
    MatchingMpcOptions opt = base;
    opt.words_per_machine = words;
    const auto r = matching_mpc(g, opt);
    EXPECT_EQ(r.x, reference.x) << words;
    EXPECT_EQ(r.cover, reference.cover) << words;
    EXPECT_EQ(r.freeze_iteration, reference.freeze_iteration) << words;
  }
}

TEST(ModelInvariance, RoundsDoDependOnLayout) {
  // The complement: costs are layout-dependent even though outputs are
  // not (a bigger memory budget shortens relay trees).
  const Graph g = make_family("gnp_dense", 400, 9);
  MisMpcOptions small;
  small.seed = 37;
  small.num_machines = 16;
  small.words_per_machine = 1U << 12;
  small.gather_budget = 1U << 11;
  MisMpcOptions large = small;
  large.num_machines = 2;
  large.words_per_machine = 1U << 20;
  const auto rs = mis_mpc(g, small);
  const auto rl = mis_mpc(g, large);
  EXPECT_EQ(rs.mis, rl.mis);
  EXPECT_NE(rs.metrics.rounds, rl.metrics.rounds);
}

}  // namespace
}  // namespace mpcg
