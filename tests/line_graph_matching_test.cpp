#include <gtest/gtest.h>

#include "core/line_graph_matching.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(LineGraphMatchingMpc, ProducesMaximalMatching) {
  for (const char* family : {"gnp_sparse", "bipartite", "grid", "cliques"}) {
    const Graph g = make_family(family, 200, 3);
    MisMpcOptions opt;
    opt.seed = 3;
    const auto r = line_graph_matching_mpc(g, opt);
    EXPECT_TRUE(is_maximal_matching(g, r.matching)) << family;
    EXPECT_EQ(r.line_vertices, g.num_edges()) << family;
  }
}

TEST(LineGraphMatchingMpc, ExactGreedyModeMatchesLineGraphGreedy) {
  // With the sparsified stage off, the reduction is exactly randomized
  // greedy maximal matching (the Luby-on-line-graph construction from the
  // paper's introduction).
  const Graph g = make_family("gnp_sparse", 150, 7);
  MisMpcOptions opt;
  opt.seed = 11;
  opt.use_sparsified_stage = false;
  const auto r = line_graph_matching_mpc(g, opt);
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
}

TEST(LineGraphMatchingMpc, ReportsLineGraphBlowup) {
  // The memory caveat the paper's direct algorithm avoids: the star's line
  // graph is a clique on n-1 vertices.
  const Graph g = star_graph(40);
  MisMpcOptions opt;
  opt.seed = 5;
  const auto r = line_graph_matching_mpc(g, opt);
  EXPECT_EQ(r.line_vertices, 39U);
  EXPECT_EQ(r.line_edges, 39U * 38U / 2);
  EXPECT_EQ(r.matching.size(), 1U);
}

TEST(LineGraphMatchingMpc, EmptyGraph) {
  const Graph g = GraphBuilder(4).build();
  MisMpcOptions opt;
  const auto r = line_graph_matching_mpc(g, opt);
  EXPECT_TRUE(r.matching.empty());
}

}  // namespace
}  // namespace mpcg
