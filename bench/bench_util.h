// Shared helpers for the experiment harness.
//
// Every bench binary regenerates one "table/figure" of EXPERIMENTS.md: each
// benchmark row is one row of the table, and the google-benchmark counters
// carry the quantities the paper's claim is about (rounds, phases, ratios,
// per-machine words) — wall-clock time is incidental.
#ifndef MPCG_BENCH_BENCH_UTIL_H
#define MPCG_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdint>

#include <benchmark/benchmark.h>

#include "gen/families.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg::bench {

inline double log2log2(double x) {
  return std::log2(std::max(2.0, std::log2(std::max(2.0, x))));
}

/// G(n, p) with a target average degree, deterministic per (n, seed).
inline Graph gnp_with_degree(std::size_t n, double avg_degree,
                             std::uint64_t seed) {
  Rng rng(mix64(seed, 0xbe7c4, n));
  return erdos_renyi_gnp(n, avg_degree / static_cast<double>(n), rng);
}

}  // namespace mpcg::bench

#endif  // MPCG_BENCH_BENCH_UTIL_H
