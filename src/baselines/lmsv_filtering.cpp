#include "baselines/lmsv_filtering.h"

#include <algorithm>

#include "baselines/greedy_matching.h"
#include "util/rng.h"

namespace mpcg {

LmsvResult lmsv_maximal_matching(const Graph& g, std::size_t memory_words,
                                 std::uint64_t seed) {
  LmsvResult result;
  if (memory_words == 0) memory_words = 1;
  Rng rng(seed);

  std::vector<char> matched(g.num_vertices(), 0);
  std::vector<EdgeId> alive(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) alive[e] = e;

  const auto greedy_on = [&](const std::vector<EdgeId>& edges) {
    for (const EdgeId e : edges) {
      const Edge ed = g.edge(e);
      if (!matched[ed.u] && !matched[ed.v]) {
        matched[ed.u] = 1;
        matched[ed.v] = 1;
        result.matching.push_back(e);
      }
    }
  };

  while (alive.size() > memory_words) {
    result.edges_per_round.push_back(alive.size());
    // Sample to fit one machine (expected sample size memory_words / 2).
    const double p = std::min(
        1.0, static_cast<double>(memory_words) /
                 (2.0 * static_cast<double>(alive.size())));
    std::vector<EdgeId> sample;
    for (const EdgeId e : alive) {
      if (rng.next_bernoulli(p)) sample.push_back(e);
    }
    if (sample.empty()) {
      // Guarantees progress even on astronomically unlucky draws.
      sample.push_back(alive[rng.next_below(alive.size())]);
    }
    greedy_on(sample);
    // Filter: drop edges touching matched vertices.
    std::erase_if(alive, [&](EdgeId e) {
      const Edge ed = g.edge(e);
      return matched[ed.u] || matched[ed.v];
    });
    ++result.rounds;
  }

  result.edges_per_round.push_back(alive.size());
  greedy_on(alive);  // final local pass: everything fits on one machine
  ++result.rounds;
  return result;
}

}  // namespace mpcg
