#include "mpc/sort.h"

#include <algorithm>

#include "mpc/primitives.h"

namespace mpcg::mpc {

std::vector<std::vector<Word>> distributed_sort(
    Engine& engine, const std::vector<std::vector<Word>>& per_machine_input,
    std::size_t sample_per_machine) {
  const std::size_t m = engine.num_machines();
  if (per_machine_input.size() > m) {
    throw std::invalid_argument("distributed_sort: more inputs than machines");
  }

  // Local sort (free: local computation).
  std::vector<std::vector<Word>> local(m);
  for (std::size_t i = 0; i < per_machine_input.size(); ++i) {
    local[i] = per_machine_input[i];
    std::sort(local[i].begin(), local[i].end());
  }

  // Round 1: regular samples to the leader.
  std::vector<std::vector<Word>> sample_parts(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t len = local[i].size();
    if (len == 0) continue;
    const std::size_t count = std::min(sample_per_machine, len);
    for (std::size_t k = 0; k < count; ++k) {
      sample_parts[i].push_back(local[i][k * len / count]);
    }
  }
  auto samples = gather_to(engine, 0, sample_parts);
  std::sort(samples.begin(), samples.end());

  // Leader picks m-1 splitters; round(s) 2: broadcast them. The view
  // aliases the delivered payload (no copy back into a vector); it stays
  // valid through the push loop below and dies at that exchange.
  std::vector<Word> splitters;
  if (!samples.empty()) {
    for (std::size_t k = 1; k < m; ++k) {
      splitters.push_back(samples[k * samples.size() / m]);
    }
  }
  const std::span<const Word> splitter_view =
      broadcast_view(engine, 0, splitters);

  // Round 3: route each element to its bucket machine. Each machine's
  // elements are locally sorted, so bucket ids are non-decreasing and the
  // streamed outbox stages the whole route as one run per occupied bucket.
  const auto bucket_of = [&](Word w) {
    const auto it =
        std::upper_bound(splitter_view.begin(), splitter_view.end(), w);
    return static_cast<std::size_t>(it - splitter_view.begin());
  };
  for (std::size_t i = 0; i < m; ++i) {
    Outbox ob = engine.outbox(i);
    ob.reserve(local[i].size());
    for (const Word w : local[i]) {
      ob.append(bucket_of(w), w);
    }
  }
  engine.exchange();

  std::vector<std::vector<Word>> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    engine.inbox_view(i).append_to(out[i]);
    std::sort(out[i].begin(), out[i].end());
    engine.note_storage(i, out[i].size());
  }
  return out;
}

}  // namespace mpcg::mpc
