// Execution backends (mpc/backend.h): the chunk-partition contract, the
// lowest-slot exception rule, pool quiesce at safe points, and the
// headline determinism pin — every driver, on every graph family, at
// every thread count (including oversubscribing this box), produces
// outputs and logical engine metrics bit-identical to the sequential
// reference, with and without faults/integrity/audit armed, and across a
// durable stop/resume seam.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/integral_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "core/vertex_cover.h"
#include "fault/durable.h"
#include "fault/fault_plan.h"
#include "graph/validation.h"
#include "mpc/backend.h"
#include "mpc/engine.h"
#include "test_util.h"

namespace mpcg {
namespace {

using fault::ResumableInterrupt;
using mpc::ExecutionBackend;
using mpc::ParallelBackend;
using mpc::SequentialBackend;
using mpc::StageShards;
using testing::make_family;

/// Bitwise metrics equality — Metrics has unique object representations
/// (it is a disk format), so memcmp is exact.
template <typename M>
bool same_metrics(const M& a, const M& b) {
  return std::memcmp(&a, &b, sizeof(M)) == 0;
}

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
        "/mpcg_backend_test.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

// ------------------------------------------------------- chunk contract

TEST(Backend, SequentialBackendRunsOneInlineChunk) {
  SequentialBackend b;
  EXPECT_EQ(b.threads(), 1U);
  EXPECT_FALSE(b.parallel());
  std::vector<std::size_t> seen;
  b.run_chunks(3, 11, [&](std::size_t slot, std::size_t lo, std::size_t hi) {
    EXPECT_EQ(slot, 0U);
    for (std::size_t i = lo; i < hi; ++i) seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 8U);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 3 + i);
  // Empty range: fn never runs.
  b.run_chunks(5, 5, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
}

TEST(Backend, ChunksPartitionTheRangeContiguouslyAscendingBySlot) {
  for (const std::size_t threads : {2U, 3U, 4U, 8U, 16U}) {
    ParallelBackend b(threads);
    EXPECT_TRUE(b.parallel());
    EXPECT_EQ(b.threads(), threads);
    for (const auto [begin, end] :
         {std::pair<std::size_t, std::size_t>{0, 1},
          {0, 7},
          {5, 5},
          {3, 1000},
          {0, threads - 1},  // fewer items than chunks: empties skipped
          {0, threads}}) {
      std::mutex mu;
      std::vector<std::array<std::size_t, 3>> chunks;
      b.run_chunks(begin, end,
                   [&](std::size_t slot, std::size_t lo, std::size_t hi) {
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.push_back({slot, lo, hi});
                   });
      std::sort(chunks.begin(), chunks.end());
      // Non-empty chunks, sorted by slot, tile [begin, end) exactly.
      std::size_t at = begin;
      for (const auto& c : chunks) {
        EXPECT_LT(c[0], threads);
        EXPECT_EQ(c[1], at) << "begin=" << begin << " end=" << end;
        EXPECT_LT(c[1], c[2]);
        at = c[2];
      }
      EXPECT_EQ(at, std::max(begin, end));
      // The boundaries are the documented pure function of (begin, end, T):
      // chunk k covers [begin + len*k/T, begin + len*(k+1)/T).
      const std::size_t len = end - begin;
      for (const auto& c : chunks) {
        EXPECT_EQ(c[1], begin + len * c[0] / threads);
        EXPECT_EQ(c[2], begin + len * (c[0] + 1) / threads);
      }
    }
  }
}

TEST(Backend, ParallelForMachinesVisitsEveryIndexExactlyOnce) {
  ParallelBackend b(4);
  std::vector<std::atomic<int>> hits(257);
  b.parallel_for_machines(hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Backend, LowestSlotExceptionWins) {
  ParallelBackend b(8);
  // Every chunk throws: slot 0's exception must surface.
  try {
    b.run_chunks(0, 64, [](std::size_t slot, std::size_t, std::size_t) {
      throw std::runtime_error("slot " + std::to_string(slot));
    });
    FAIL() << "run_chunks swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "slot 0");
  }
  // Only high slots throw: the lowest thrower wins.
  try {
    b.run_chunks(0, 64, [](std::size_t slot, std::size_t, std::size_t) {
      if (slot >= 5) throw std::runtime_error("slot " + std::to_string(slot));
    });
    FAIL() << "run_chunks swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "slot 5");
  }
  // The pool survives a throwing job and keeps scheduling.
  std::atomic<std::size_t> count{0};
  b.run_chunks(0, 100, [&](std::size_t, std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 100U);
}

TEST(Backend, QuiesceParksEveryWorker) {
  ParallelBackend b(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    b.run_chunks(0, 17, [&](std::size_t, std::size_t lo, std::size_t hi) {
      count.fetch_add(hi - lo);
    });
    EXPECT_EQ(count.load(), 17U);
    b.quiesce();
    EXPECT_EQ(b.idle_workers(), 3U);
  }
}

TEST(Backend, MakeBackendGatesOnThreadCount) {
  EXPECT_FALSE(mpc::make_backend(0)->parallel());
  EXPECT_FALSE(mpc::make_backend(1)->parallel());
  const auto par = mpc::make_backend(6);
  EXPECT_TRUE(par->parallel());
  EXPECT_EQ(par->threads(), 6U);
}

TEST(Backend, StageShardsReplaySequentialPerSenderOrder) {
  // Collect the same records sequentially and chunked-in-parallel; every
  // sender must drain the identical word sequence.
  constexpr std::size_t kItems = 1000;
  constexpr std::size_t kSenders = 7;
  const auto sender_of = [](std::size_t i) {
    return static_cast<std::uint32_t>((i * 2654435761U) % kSenders);
  };
  std::vector<std::vector<std::uint64_t>> want(kSenders);
  for (std::size_t i = 0; i < kItems; ++i) {
    want[sender_of(i)].push_back(i * 3 + 1);
  }
  for (const std::size_t threads : {2U, 4U, 8U}) {
    ParallelBackend b(threads);
    StageShards shards;
    shards.reset(b.threads(), kSenders);
    b.run_chunks(0, kItems,
                 [&](std::size_t slot, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     shards.add(slot, sender_of(i), 0, i * 3 + 1);
                   }
                 });
    std::vector<std::vector<std::uint64_t>> got(kSenders);
    std::mutex mu;
    shards.drain(b, [&](std::uint32_t snd,
                        std::span<const mpc::StageRecord> recs) {
      // Per-sender buckets arrive slot-ascending; distinct senders may be
      // interleaved across threads, so only guard the shared vector.
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& r : recs) got[snd].push_back(r.word);
    });
    EXPECT_EQ(got, want) << "threads=" << threads;
    EXPECT_EQ(shards.drained_senders().size(), kSenders);
  }
}

// -------------------------------------------- engine safe-point quiesce

TEST(Backend, EngineCheckpointBoundaryQuiescesThePool) {
  mpc::Config cfg{4, 1 << 16, true};
  cfg.threads = 4;
  mpc::Engine engine(cfg);
  auto* pool = dynamic_cast<ParallelBackend*>(&engine.backend());
  ASSERT_NE(pool, nullptr);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t from = 0; from < 4; ++from) {
      mpc::Outbox ob = engine.outbox(from);
      for (std::size_t to = 0; to < 4; ++to) {
        for (int k = 0; k < 100; ++k) ob.append(to, from * 1000 + k);
      }
    }
    engine.exchange();
    // No durability configured: checkpoint_boundary still quiesces first.
    engine.checkpoint_boundary();
    EXPECT_EQ(pool->idle_workers(), 3U);
  }
}

TEST(Backend, CcliqueCheckpointBoundaryQuiescesThePool) {
  cclique::Engine engine(64, /*strict=*/true, /*integrity=*/false,
                         /*audit=*/false, /*scrub_interval=*/0,
                         /*threads=*/4);
  auto* pool = dynamic_cast<ParallelBackend*>(&engine.backend());
  ASSERT_NE(pool, nullptr);
  engine.broadcast(0, 42);
  engine.exchange();
  engine.checkpoint_boundary();
  EXPECT_EQ(pool->idle_workers(), 3U);
}

// ------------------------------------------------- driver coupling pins

constexpr const char* kCouplingFamilies[] = {"gnp_sparse", "rmat", "star"};
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

TEST(BackendCoupling, MisMatchesSequentialBitIdentically) {
  for (const char* family : kCouplingFamilies) {
    const Graph g = make_family(family, 900, 11);
    MisMpcOptions opt;
    opt.seed = 11;
    const auto ref = mis_mpc(g, opt);
    ASSERT_TRUE(is_maximal_independent_set(g, ref.mis)) << family;
    for (const std::size_t threads : kThreadCounts) {
      MisMpcOptions par = opt;
      par.threads = threads;
      const auto got = mis_mpc(g, par);
      EXPECT_EQ(got.mis, ref.mis) << family << " t=" << threads;
      EXPECT_EQ(got.rank_phases, ref.rank_phases);
      EXPECT_EQ(got.sparsified_iterations, ref.sparsified_iterations);
      EXPECT_EQ(got.window_edges_per_phase, ref.window_edges_per_phase);
      EXPECT_TRUE(same_metrics(got.metrics, ref.metrics))
          << family << " t=" << threads;
    }
  }
}

TEST(BackendCoupling, MatchingMatchesSequentialBitIdentically) {
  for (const char* family : kCouplingFamilies) {
    const Graph g = make_family(family, 900, 13);
    MatchingMpcOptions opt;
    opt.seed = 13;
    const auto ref = matching_mpc(g, opt);
    for (const std::size_t threads : kThreadCounts) {
      MatchingMpcOptions par = opt;
      par.threads = threads;
      const auto got = matching_mpc(g, par);
      EXPECT_TRUE(same_bits(got.x, ref.x)) << family << " t=" << threads;
      EXPECT_EQ(got.cover, ref.cover) << family << " t=" << threads;
      EXPECT_EQ(got.freeze_iteration, ref.freeze_iteration);
      EXPECT_EQ(got.phases, ref.phases);
      EXPECT_EQ(got.total_iterations, ref.total_iterations);
      EXPECT_EQ(got.max_local_edges_per_phase, ref.max_local_edges_per_phase);
      EXPECT_TRUE(same_metrics(got.metrics, ref.metrics))
          << family << " t=" << threads;
    }
  }
}

TEST(BackendCoupling, VertexCoverMatchesSequentialBitIdentically) {
  for (const char* family : kCouplingFamilies) {
    const Graph g = make_family(family, 700, 17);
    MatchingMpcOptions opt;
    opt.seed = 17;
    const auto ref = minimum_vertex_cover_mpc(g, opt);
    ASSERT_TRUE(is_vertex_cover(g, ref.cover)) << family;
    for (const std::size_t threads : kThreadCounts) {
      MatchingMpcOptions par = opt;
      par.threads = threads;
      const auto got = minimum_vertex_cover_mpc(g, par);
      EXPECT_EQ(got.cover, ref.cover) << family << " t=" << threads;
      EXPECT_EQ(got.rounds, ref.rounds);
      EXPECT_EQ(got.phases, ref.phases);
      const double a = got.dual_certificate;
      const double b = ref.dual_certificate;
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << family << " t=" << threads;
    }
  }
}

TEST(BackendCoupling, MisCcliqueMatchesSequentialBitIdentically) {
  for (const char* family : kCouplingFamilies) {
    const Graph g = make_family(family, 500, 19);
    MisCcliqueOptions opt;
    opt.seed = 19;
    const auto ref = mis_cclique(g, opt);
    ASSERT_TRUE(is_maximal_independent_set(g, ref.mis)) << family;
    for (const std::size_t threads : kThreadCounts) {
      MisCcliqueOptions par = opt;
      par.threads = threads;
      const auto got = mis_cclique(g, par);
      EXPECT_EQ(got.mis, ref.mis) << family << " t=" << threads;
      EXPECT_EQ(got.rank_phases, ref.rank_phases);
      EXPECT_EQ(got.window_edges_per_phase, ref.window_edges_per_phase);
      EXPECT_TRUE(same_metrics(got.metrics, ref.metrics))
          << family << " t=" << threads;
    }
  }
}

TEST(BackendCoupling, ParallelBackendUnderFaultsIntegrityAudit) {
  // The full armed stack on the pool: injected crashes + payload rot with
  // recovery, checksums, audit, and scrub must still be bit-identical to
  // the *sequential* armed run (which PR 6-8 pinned against fault-free).
  const Graph g = make_family("gnp_sparse", 900, 23);
  MisMpcOptions opt;
  opt.seed = 23;
  const auto probe = mis_mpc(g, opt);
  const auto plan = fault::FaultPlan::random_storm(
      mix64(23, 1, 0xc4a05), /*num_machines=*/2, probe.metrics.rounds, 8);
  MisMpcOptions armed = opt;
  armed.fault_plan = &plan;
  armed.integrity = true;
  armed.audit = true;
  armed.scrub_interval = 3;
  const auto ref = mis_mpc(g, armed);
  EXPECT_EQ(ref.mis, probe.mis);
  for (const std::size_t threads : {2U, 4U}) {
    MisMpcOptions par = armed;
    par.threads = threads;
    const auto got = mis_mpc(g, par);
    EXPECT_EQ(got.mis, ref.mis) << "t=" << threads;
    EXPECT_TRUE(same_metrics(got.metrics, ref.metrics)) << "t=" << threads;
  }
}

TEST(BackendCoupling, ParallelDurableStopResumeMatchesSequential) {
  // Durable stop at a safe point with the pool armed: the quiesce at
  // checkpoint_boundary makes the persisted generation worker-silent, and
  // the resumed (still parallel) run must land bit-identical to the
  // uninterrupted sequential reference.
  const Graph g = make_family("gnp_sparse", 1200, 29);
  MisMpcOptions opt;
  opt.seed = 29;
  const auto ref = mis_mpc(g, opt);
  for (const std::size_t stop_after : {1U, 2U}) {
    TempDir td;
    MisMpcOptions d = opt;
    d.threads = 4;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    bool stopped = false;
    try {
      (void)mis_mpc(g, d);
    } catch (const ResumableInterrupt&) {
      stopped = true;
    }
    if (stop_after == 1) EXPECT_TRUE(stopped);
    MisMpcOptions r = opt;
    r.threads = 4;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = mis_mpc(g, r);
    EXPECT_EQ(res.mis, ref.mis) << "stop_after=" << stop_after;
    EXPECT_EQ(res.rank_phases, ref.rank_phases);
    EXPECT_EQ(res.metrics.rounds, ref.metrics.rounds);
    EXPECT_EQ(res.metrics.total_words, ref.metrics.total_words);
    if (stopped) EXPECT_EQ(res.metrics.resume_loads, 1U);
  }
}

}  // namespace
}  // namespace mpcg
