// Hopcroft–Karp maximum bipartite matching, plus a bipartition finder.
//
// Used as the exact reference on bipartite inputs (O(E sqrt(V))), cheaper
// than the general blossom solver and an independent cross-check of it.
#ifndef MPCG_BASELINES_HOPCROFT_KARP_H
#define MPCG_BASELINES_HOPCROFT_KARP_H

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Two-colors the graph if it is bipartite: side[v] in {0, 1}. Returns
/// nullopt when an odd cycle exists. Isolated vertices get side 0.
[[nodiscard]] std::optional<std::vector<char>> try_bipartition(const Graph& g);

/// Maximum matching of a bipartite graph given a valid bipartition.
[[nodiscard]] std::vector<EdgeId> hopcroft_karp_matching(
    const Graph& g, const std::vector<char>& side);

}  // namespace mpcg

#endif  // MPCG_BASELINES_HOPCROFT_KARP_H
