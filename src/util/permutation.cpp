#include "util/permutation.h"

#include <numeric>

namespace mpcg {

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<std::uint32_t> invert_permutation(
    const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[perm[i]] = static_cast<std::uint32_t>(i);
  }
  return inv;
}

bool is_permutation_of_iota(const std::vector<std::uint32_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const auto v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace mpcg
