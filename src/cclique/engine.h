// CONGESTED-CLIQUE model simulator.
//
// The model (paper, Section 1.1.2): n players, synchronous rounds, and in
// each round every player may send O(log n) bits — one machine word here —
// to every other player. Players are identified with the vertices of the
// input graph; initially each player knows only its own incident edges.
//
// Two communication services are provided:
//   * per-round point-to-point sends and one-to-all broadcasts, enforced to
//     at most one word per ordered pair per round;
//   * Lenzen's routing scheme [Len13]: any multiset of messages in which
//     every player sends at most n and receives at most n words is
//     delivered in O(1) rounds (charged as 2 rounds per feasible batch;
//     infeasible loads are split into feasible batches and charged
//     accordingly, so overloads are visible in the round count).
//
// Broadcasts are stored once and shared by all receivers (every player's
// view of a broadcast is identical), which keeps the simulator's memory
// O(messages) instead of O(n * messages) without changing any player's
// knowledge.
#ifndef MPCG_CCLIQUE_ENGINE_H
#define MPCG_CCLIQUE_ENGINE_H

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/durable.h"
#include "mpc/backend.h"
#include "util/fnv.h"

namespace mpcg::fault {
class FaultPlan;
class CheckpointRegistry;
struct FaultEvent;
}  // namespace mpcg::fault

namespace mpcg::cclique {

using Word = std::uint64_t;
using PlayerId = std::uint32_t;

class CongestionError : public std::runtime_error {
 public:
  explicit CongestionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A detected payload corruption could not be repaired (the retransmit
/// budget was exhausted and checkpoint recovery is off).  Mirrors
/// mpc::IntegrityError.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The runtime audit found a conservation violation: point-to-point or
/// broadcast words that vanished or appeared between staging and delivery,
/// or a Lenzen batch split that lost words.  An AuditError is a simulator
/// bug, never an expected outcome of an injected fault.  Mirrors
/// mpc::AuditError.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

struct Message {
  PlayerId from;
  PlayerId to;
  Word word;
};

/// Run-length staged message multiset for Engine::lenzen_route — the same
/// span/run form the MPC engine's streamed outboxes use. A driver appends
/// words (or whole word runs) instead of materializing 16-byte Message
/// records; consecutive appends sharing a (from, to) pair extend one run
/// descriptor over the contiguous word stream, so a vertex's burst to the
/// leader stages as one descriptor + its words. Reusable: clear() between
/// route calls keeps the buffers warm.
class RouteStream {
 public:
  void clear() noexcept {
    runs_.clear();
    words_.clear();
  }
  [[nodiscard]] bool empty() const noexcept { return words_.empty(); }
  /// Number of staged messages (words).
  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }

  void append(PlayerId from, PlayerId to, Word word) {
    words_.push_back(word);
    if (!runs_.empty() && runs_.back().from == from &&
        runs_.back().to == to && runs_.back().count != kMaxCount) {
      ++runs_.back().count;
    } else {
      runs_.push_back(Run{from, to, 1});
    }
  }

  /// Stages a whole word run for one (from, to) pair: one bulk copy plus
  /// one descriptor (merging with an open run to the same pair).
  void append_run(PlayerId from, PlayerId to, std::span<const Word> words) {
    if (words.empty()) return;
    words_.insert(words_.end(), words.begin(), words.end());
    std::size_t left = words.size();
    if (!runs_.empty() && runs_.back().from == from &&
        runs_.back().to == to) {
      const std::size_t room = kMaxCount - runs_.back().count;
      const std::size_t take = left < room ? left : room;
      runs_.back().count += static_cast<std::uint32_t>(take);
      left -= take;
    }
    while (left > 0) {
      const std::size_t take = left < kMaxCount ? left : kMaxCount;
      runs_.push_back(Run{from, to, static_cast<std::uint32_t>(take)});
      left -= take;
    }
  }

  /// Appends another stream's staged runs and words, merging across the
  /// boundary when the last open run and the other stream's first run
  /// share a (from, to) pair — so concatenating per-chunk streams built
  /// over a contiguous partition of an iteration domain, in chunk order,
  /// yields exactly the stream the sequential loop would have staged.
  void append_stream(const RouteStream& other) {
    std::size_t pos = 0;
    for (const Run& run : other.runs_) {
      append_run(run.from, run.to,
                 std::span<const Word>(other.words_.data() + pos, run.count));
      pos += run.count;
    }
  }

 private:
  friend class Engine;
  struct Run {
    PlayerId from;
    PlayerId to;
    std::uint32_t count;
  };
  static constexpr std::uint32_t kMaxCount = 0xffffffffu;
  std::vector<Run> runs_;
  std::vector<Word> words_;
};

/// One delivered stretch of a routed stream: `count` consecutive words
/// from one sender, aliasing the caller's RouteStream word storage (valid
/// while the stream outlives the view and is not mutated).
struct RouteSegment {
  PlayerId from;
  const Word* words;
  std::uint32_t count;
};

/// Segmented per-player delivery view for Engine::lenzen_route_view — the
/// cclique analogue of mpc::InboxView. Where the legacy lenzen_route
/// materializes one 16-byte Message per routed word, the view holds one
/// RouteSegment per delivered batch run: O(runs) descriptors over the
/// already-resident stream words, zero per-word expansion. Segments are in
/// delivery order (batch-major, then batch-run order), which matches the
/// legacy per-player Message order word for word.
class RouteView {
 public:
  /// Words delivered to this player.
  [[nodiscard]] std::size_t size() const noexcept { return words_; }
  [[nodiscard]] bool empty() const noexcept { return words_ == 0; }
  [[nodiscard]] std::span<const RouteSegment> segments() const noexcept {
    return segs_;
  }

 private:
  friend class Engine;
  std::vector<RouteSegment> segs_;
  std::size_t words_ = 0;
};

struct Metrics {
  std::size_t rounds = 0;
  /// Peak point-to-point words sent by one player in one round (excluding
  /// broadcasts, which cost one word per recipient by definition).
  std::size_t max_player_sent = 0;
  std::size_t max_player_received = 0;
  std::size_t violations = 0;
  std::size_t total_words = 0;
  /// Number of Lenzen batches executed.
  std::size_t lenzen_batches = 0;

  // Fault-recovery accounting (all zero unless a FaultPlan is attached);
  // overhead only — the logical fields above stay bit-identical to the
  // fault-free run when recovery is on. Same semantics as mpc::Metrics.
  std::size_t rounds_replayed = 0;
  std::size_t words_resent = 0;
  std::size_t checkpoint_bytes = 0;
  std::size_t faults_injected = 0;
  /// kCorruptPayload events that flipped at least one staged bit.
  std::size_t corruptions_injected = 0;
  /// Corruptions caught by the per-player stream checksums; equals
  /// corruptions_injected whenever integrity is on.
  std::size_t corruptions_detected = 0;
  /// Words re-delivered by the detect->retransmit protocol.
  std::size_t words_retransmitted = 0;
  /// kCorruptStore events that flipped at least one broadcast-store bit.
  std::size_t store_corruptions_injected = 0;
  /// Store corruptions caught by the broadcast-store digest; equals
  /// store_corruptions_injected whenever integrity is on.
  std::size_t store_corruptions_detected = 0;
  /// Words reinstated from the publisher's retained pristine copy by the
  /// in-place broadcast-store repair.
  std::size_t store_words_repaired = 0;
  /// Checkpoint restores that fell back past a rotted newest generation.
  std::size_t checkpoint_fallbacks = 0;
  /// Proactive durable-store scrub sweeps executed (scrub_interval).
  std::size_t scrub_passes = 0;

  // On-disk durability accounting (all zero unless durability is armed
  // via set_durability). Same semantics as mpc::Metrics.
  std::size_t disk_checkpoints_written = 0;
  std::size_t disk_checkpoint_words = 0;
  std::size_t resume_loads = 0;
  std::size_t disk_fallbacks = 0;
  std::size_t faults_skipped_on_resume = 0;
};

class Engine {
 public:
  /// `integrity` arms per-player FNV-1a checksums over the point-to-point
  /// words, folded incrementally at send() time and verified before every
  /// delivery; a mismatch triggers the detect->retransmit protocol (see
  /// FaultKind::kCorruptPayload).  Broadcasts are excluded: the broadcast
  /// store holds one durable shared copy, the cclique analogue of the MPC
  /// engine's payload store.  `audit` checks conservation invariants every
  /// round — staged point-to-point and broadcast words each equal their
  /// deliveries (net of injected drops/dups/delays), and Lenzen batch
  /// splits preserve the routed word total — throwing AuditError on any
  /// violation.  `scrub_interval` arms the opt-in round-boundary scrub
  /// (every scrub_interval-th round; 0 = never): a pure verification sweep
  /// over the point-to-point streams, the broadcast store, and the
  /// checkpoint generations, observable on a clean run only as
  /// Metrics::scrub_passes.  Inert without `integrity` (no digests exist).
  /// `threads` selects the execution backend (see mpc/backend.h): 1 = the
  /// sequential reference, > 1 = a shared-memory pool the drivers run
  /// their per-player local loops through (outputs and all logical Metrics
  /// are bit-identical across every value).
  explicit Engine(std::size_t num_players, bool strict = true,
                  bool integrity = false, bool audit = false,
                  std::size_t scrub_interval = 0, std::size_t threads = 1);

  [[nodiscard]] std::size_t num_players() const noexcept { return n_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// The execution backend driver loops share with this engine (the
  /// engine's own exchange and routing stay sequential — they are O(runs)
  /// bookkeeping, never the hot surface).
  [[nodiscard]] mpc::ExecutionBackend& backend() noexcept {
    return *backend_;
  }

  /// Queues one word from `from` to `to` for the next exchange. At most one
  /// word per ordered pair per round (checked at exchange()).
  void send(PlayerId from, PlayerId to, Word word);

  /// Queues a one-to-all broadcast (one word from `from` to every other
  /// player) for the next exchange.
  void broadcast(PlayerId from, Word word);

  /// Executes one round: delivers queued sends/broadcasts, enforcing the
  /// one-word-per-ordered-pair budget.
  void exchange();

  /// Point-to-point words delivered to `player` in the last exchange.
  [[nodiscard]] const std::vector<Message>& inbox(PlayerId player) const;

  /// Broadcast words delivered in the last exchange (identical for every
  /// player).
  [[nodiscard]] const std::vector<Message>& broadcast_inbox() const noexcept {
    return bcast_inbox_;
  }

  /// Routes a run-length staged message multiset with Lenzen's scheme.
  /// Each feasible batch (<= n per sender and per receiver) costs 2 rounds;
  /// batching bookkeeping is paid per *run chunk*, not per word, and
  /// delivery is segmented: each player's view holds O(batch runs)
  /// descriptors aliasing the caller's stream words — no per-word Message
  /// materialization at all. The views live in engine-owned persistent
  /// scratch (valid until the next routing call, while `stream` is alive
  /// and unmutated) — a call costs O(runs + batches), not O(words) or
  /// O(players), after warm-up. Any sends/broadcasts already queued must
  /// be flushed (exchange()d) first; mixing throws.
  const std::vector<RouteView>& lenzen_route_view(const RouteStream& stream);

  /// Materializing form: routes via lenzen_route_view and expands the
  /// delivered views into per-destination Message buckets (16 bytes per
  /// routed word — the expansion the view form exists to avoid; the words
  /// expanded are tallied in route_words_materialized()). Batch splits,
  /// delivery order, and metrics are bit-identical to the view form.
  const std::vector<std::vector<Message>>& lenzen_route(
      const RouteStream& stream);

  /// Legacy form: restages `messages` as a run-length stream (adjacent
  /// same-pair messages merge into runs) and routes it. Batch splits,
  /// delivery order, and metrics are bit-identical to the pre-stream
  /// per-message routing.
  const std::vector<std::vector<Message>>& lenzen_route(
      std::vector<Message> messages);

  /// Words expanded into Message records by the materializing lenzen_route
  /// wrappers, cumulative. Stays 0 on the lenzen_route_view path — the E13
  /// bench pins exactly that.
  [[nodiscard]] std::size_t route_words_materialized() const noexcept {
    return route_words_materialized_;
  }

  /// Opaque copy of the staged round (pending sends, broadcast queue) plus
  /// Metrics; the cclique analogue of mpc::Engine::Snapshot.
  class Snapshot {
   public:
    Snapshot() = default;
    [[nodiscard]] std::size_t words() const noexcept;

   private:
    friend class Engine;
    std::vector<Message> pending;
    std::vector<PlayerId> pending_broadcasts;
    std::vector<Message> bcast_staging;
    std::vector<std::uint64_t> csums;
    std::uint64_t bcast_csum = 0;
    Metrics metrics{};
  };

  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Attaches a deterministic fault schedule (see
  /// mpc::Engine::set_fault_plan for the full contract — semantics are
  /// identical, with "machine" meaning player here). lenzen_route treats
  /// every fault in a batch's two rounds as recovered: the scheme's batch
  /// structure is its own retransmission unit.
  void set_fault_plan(const fault::FaultPlan* plan,
                      fault::CheckpointRegistry* registry = nullptr,
                      bool recover = true);

  [[nodiscard]] std::size_t crashes_recovered() const noexcept {
    return crashes_recovered_;
  }

  /// Arms on-disk durability (see fault/durable.h and
  /// mpc::Config::checkpoint_dir — semantics identical): a DurableRing is
  /// opened (and wiped unless `options.resume`) under `options.dir`, and
  /// `scope` becomes the configuration signature baked into every file.
  /// No-op when `options.dir` is empty.
  void set_durability(const fault::DurableOptions& options, std::string scope);

  /// Driver-announced safe point; mirrors mpc::Engine::checkpoint_boundary
  /// (stop-flag polling, every-K persistence, ResumableInterrupt).
  void checkpoint_boundary();

  /// Resume attempt; mirrors mpc::Engine::try_resume (call once, after
  /// registering providers and attaching any fault plan).
  bool try_resume();

 private:
  void persist();
  void engine_section_into(fault::DurableSection& s) const;
  void install_engine_section(std::span<const Word> payload);
  void exchange_impl();
  void exchange_faulty(std::span<const fault::FaultEvent> events);
  [[nodiscard]] std::size_t staged_out_words(std::size_t player) const;
  /// Point-to-point messages currently staged by `player`.
  [[nodiscard]] std::size_t staged_p2p(std::size_t player) const;
  /// Broadcast words currently staged by `player` (n-1 per broadcast).
  [[nodiscard]] std::size_t staged_bcast(std::size_t player) const;
  void corrupt_player_staging(std::size_t player);
  /// Returns the point-to-point words appended (the duplicated copy).
  std::size_t duplicate_player_staging(std::size_t player);
  /// Returns the point-to-point words held back.
  std::size_t delay_player_staging(std::size_t player);
  /// Recomputes csums_[player] from the staged stream (after a fault path
  /// mangled it behind the accumulator's back).
  void resync_player_checksum(std::size_t player);
  /// Does the player's staged point-to-point stream (in send order) match
  /// its append-time checksum?
  [[nodiscard]] bool player_stream_ok(std::size_t player) const;
  /// The one integrity pass per exchange: folds every staged word into its
  /// sender's scratch digest (one sweep over pending_, in send order) and
  /// compares against the accumulators; throws IntegrityError on mismatch.
  /// Resets the verified accumulators for the next round.
  void verify_streams();
  /// Flips 1..3 deterministic, deduplicated (word, bit) pairs in the
  /// player's staged point-to-point words, retaining the pristine words
  /// first.  Returns the number of bits flipped (0 if nothing staged).
  std::size_t corrupt_player_words(std::size_t player, std::size_t round,
                                   std::size_t ordinal);
  /// Serves the retained pristine words back into pending_.  Returns the
  /// word count re-delivered.
  std::size_t retransmit_retained(std::size_t player);
  /// kCorruptStore injection: retains the player's staged broadcast-store
  /// words (the pristine repair copy) and flips 1..3 deduplicated
  /// (word, bit) pairs among them.  Returns the bits flipped (0 when the
  /// player has no staged broadcasts).
  std::size_t corrupt_bcast_words(std::size_t player, std::size_t round,
                                  std::size_t ordinal);
  /// Does the broadcast store (all staged broadcast words, in staging
  /// order) match its publish-time digest accumulator?
  [[nodiscard]] bool bcast_store_ok() const;
  /// Reinstates the retained pristine broadcast words (in-place store
  /// repair).  Returns the word count restored.
  std::size_t repair_retained_bcast();
  /// Recomputes bcast_csum_ from the staged broadcast store (after a fault
  /// path mutated it behind the accumulator's back).
  void resync_bcast_checksum();
  /// The opt-in proactive scrub: re-digests the point-to-point streams and
  /// the broadcast store (non-destructively) and re-verifies every
  /// retained checkpoint generation.  Throws IntegrityError on rot that
  /// escaped repair; otherwise observable only as Metrics::scrub_passes.
  void scrub_pass();
  /// Verified checkpoint restore with generation fallback; mirrors
  /// mpc::Engine::restore_registry (CheckpointError when every generation
  /// is bad, naming `player` and `round`).
  void restore_registry(std::size_t player, std::size_t round,
                        std::size_t& replays, std::size_t& fallbacks);
  void begin_audit();
  /// Closes the conservation equations for the round just delivered.
  void finish_audit() const;
  /// Charges recovery metrics for fault events scheduled inside a Lenzen
  /// batch's two rounds.
  void lenzen_batch_faults(std::size_t first_round, std::size_t batch);

  std::size_t n_;
  bool strict_;
  bool integrity_;
  bool audit_;
  std::size_t scrub_interval_;
  /// Execution backend (ctor `threads` wide); shared with drivers via
  /// backend(), quiesced at checkpoint_boundary().
  std::unique_ptr<mpc::ExecutionBackend> backend_;
  Metrics metrics_;
  std::vector<Message> pending_;
  std::vector<PlayerId> pending_broadcasts_;
  std::vector<Message> bcast_staging_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<Message> bcast_inbox_;
  /// Persistent per-player scratch (zeroed selectively after each round, so
  /// an exchange costs O(messages) — not O(players) — in the common
  /// broadcast-only rounds of the drivers).
  std::vector<char> broadcasting_;
  std::vector<std::uint32_t> sent_;
  std::vector<std::uint32_t> received_;
  /// Inboxes filled by the last exchange (the only ones that need
  /// clearing next round).
  std::vector<PlayerId> inbox_touched_;
  /// One batch-assigned chunk of a staged run: `count` words starting at
  /// `offset` in the routed stream, all from -> to.
  struct BatchRun {
    PlayerId from;
    PlayerId to;
    std::uint32_t count;
    std::size_t offset;
  };
  /// lenzen_route scratch, persistent across calls: per-destination
  /// segmented views (touched-only clearing), per-batch run chunks, and
  /// per-batch sender/receiver load counters (touched entries reset after
  /// routing), so a call allocates nothing after warm-up.
  std::vector<RouteView> route_view_;
  std::vector<PlayerId> route_touched_;
  /// Materializing-wrapper scratch: per-destination Message buckets plus
  /// their own touched list (the wrapper may be warm while view callers
  /// run in between).
  std::vector<std::vector<Message>> route_delivered_;
  std::vector<PlayerId> route_mat_touched_;
  std::size_t route_words_materialized_ = 0;
  std::vector<std::vector<BatchRun>> route_batches_;
  std::vector<std::size_t> route_batch_words_;
  std::vector<std::vector<std::uint32_t>> route_send_load_;
  std::vector<std::vector<std::uint32_t>> route_recv_load_;
  /// Backs the legacy vector<Message> lenzen_route wrapper.
  RouteStream route_restage_;

  // Fault machinery (see set_fault_plan). Pointers are borrowed.
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::CheckpointRegistry* registry_ = nullptr;
  bool fault_recover_ = true;
  std::size_t crashes_recovered_ = 0;
  // On-disk durability (see set_durability).
  fault::DurableOptions durable_;
  std::string durable_scope_;
  std::optional<fault::DurableRing> dring_;
  std::size_t safe_points_ = 0;
  /// Serialization scratch recycled across persists (see mpc::Engine).
  std::vector<fault::DurableSection> durable_scratch_;
  /// Point-to-point sends held back by a non-recovered kDelayFlush,
  /// re-staged at the next exchange.
  std::vector<Message> delayed_;
  std::vector<std::size_t> crashed_scratch_;
  std::vector<std::size_t> dark_scratch_;

  // Integrity layer (sized n_ only when integrity_ is on).
  /// Per-player FNV-1a accumulator over point-to-point words, in send
  /// order.
  std::vector<std::uint64_t> csums_;
  /// verify_streams scratch: per-player recomputed digest + touched list.
  std::vector<std::uint64_t> csum_check_;
  std::vector<PlayerId> csum_touched_;
  /// Pristine words retained by corrupt_player_words, aligned with the
  /// player's staged messages in pending_ order; valid for retained_from_
  /// within one exchange_faulty.
  std::vector<Word> retained_words_;
  std::size_t retained_from_ = static_cast<std::size_t>(-1);
  /// FNV-1a accumulator over the broadcast store (all staged broadcast
  /// words in staging order), folded at broadcast() time — the store half
  /// of the integrity layer; reset when the staging ships.
  std::uint64_t bcast_csum_ = Fnv::kOffset;
  /// Pristine broadcast words retained by corrupt_bcast_words, aligned
  /// with the player's entries in bcast_staging_ order; valid for
  /// retained_bcast_from_ within one exchange_faulty.
  std::vector<Word> retained_bcast_words_;
  std::size_t retained_bcast_from_ = static_cast<std::size_t>(-1);

  // Audit scratch: what this round staged (measured before fault events)
  // plus fault-path adjustments, so finish_audit() can close the
  // conservation equations.
  std::size_t audit_staged_ = 0;
  std::size_t audit_bcast_staged_ = 0;
  std::size_t audit_dropped_ = 0;
  std::size_t audit_bcast_dropped_ = 0;
  std::size_t audit_duped_ = 0;
  std::size_t audit_delayed_ = 0;
};

}  // namespace mpcg::cclique

#endif  // MPCG_CCLIQUE_ENGINE_H
