#include "baselines/luby.h"

#include "util/rng.h"

namespace mpcg {

LubyResult luby_mis(const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  LubyResult result;
  std::vector<char> alive(n, 1);
  std::size_t alive_count = n;

  while (alive_count > 0) {
    const std::uint64_t round = result.rounds;
    std::vector<VertexId> joined;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      const std::uint64_t pv = mix64(seed, v, round);
      bool lowest = true;
      for (const Arc& a : g.arcs(v)) {
        if (!alive[a.to]) continue;
        const std::uint64_t pu = mix64(seed, a.to, round);
        // Break the (measure-zero) ties by vertex id.
        if (pu < pv || (pu == pv && a.to < v)) {
          lowest = false;
          break;
        }
      }
      if (lowest) joined.push_back(v);
    }
    for (const VertexId v : joined) {
      if (!alive[v]) continue;  // neighbor of an earlier winner this round?
      // Two adjacent winners cannot both exist (strict priority order), so
      // all of `joined` is independent; remove each with its neighborhood.
      result.mis.push_back(v);
      alive[v] = 0;
      --alive_count;
      for (const Arc& a : g.arcs(v)) {
        if (alive[a.to]) {
          alive[a.to] = 0;
          --alive_count;
        }
      }
    }
    ++result.rounds;
  }
  return result;
}

}  // namespace mpcg
