#include "mpc/engine.h"

#include <algorithm>

namespace mpcg::mpc {

Engine::Engine(Config config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Engine: need at least one machine");
  }
  outbox_.assign(config_.num_machines,
                 std::vector<std::vector<Word>>(config_.num_machines));
  inbox_.assign(config_.num_machines, {});
}

void Engine::push(std::size_t from, std::size_t to, Word word) {
  outbox_.at(from).at(to).push_back(word);
}

void Engine::push(std::size_t from, std::size_t to,
                  std::span<const Word> words) {
  auto& box = outbox_.at(from).at(to);
  box.insert(box.end(), words.begin(), words.end());
}

void Engine::check_budget(std::size_t machine, std::size_t words,
                          const char* dir) {
  if (words > config_.words_per_machine) {
    ++metrics_.violations;
    if (config_.strict) {
      throw CapacityError("machine " + std::to_string(machine) + " " + dir +
                          " " + std::to_string(words) + " words, budget " +
                          std::to_string(config_.words_per_machine));
    }
  }
}

void Engine::exchange() {
  const std::size_t m = config_.num_machines;
  // Sending side.
  for (std::size_t from = 0; from < m; ++from) {
    std::size_t sent = 0;
    for (std::size_t to = 0; to < m; ++to) sent += outbox_[from][to].size();
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  // Receiving side: deliver in sender order.
  for (std::size_t to = 0; to < m; ++to) {
    auto& in = inbox_[to];
    in.clear();
    std::size_t received = 0;
    for (std::size_t from = 0; from < m; ++from) {
      received += outbox_[from][to].size();
    }
    in.reserve(received);
    for (std::size_t from = 0; from < m; ++from) {
      auto& box = outbox_[from][to];
      in.insert(in.end(), box.begin(), box.end());
      box.clear();
    }
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    // Whatever a machine received is resident until it processes it.
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  ++metrics_.rounds;
}

const std::vector<Word>& Engine::inbox(std::size_t machine) const {
  return inbox_.at(machine);
}

void Engine::note_storage(std::size_t machine, std::size_t words) {
  metrics_.peak_storage_words = std::max(metrics_.peak_storage_words, words);
  check_budget(machine, words, "stores");
}

void Engine::clear_inboxes() {
  for (auto& in : inbox_) in.clear();
}

}  // namespace mpcg::mpc
