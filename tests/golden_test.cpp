// Golden regression tests: exact expected outputs for fixed seeds on the
// integer-only code paths (greedy MIS and its MPC/CC simulations involve
// no floating point, so these values are platform-stable). A change here
// means algorithm *behavior* changed — which must be deliberate.
#include <gtest/gtest.h>

#include "baselines/greedy_mis.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "gen/generators.h"
#include "util/permutation.h"

namespace mpcg {
namespace {

Graph golden_graph() {
  Rng rng(0xfeed);
  return erdos_renyi_gnp(500, 0.02, rng);
}

TEST(Golden, GraphGenerationIsStable) {
  const Graph g = golden_graph();
  EXPECT_EQ(g.num_vertices(), 500U);
  EXPECT_EQ(g.num_edges(), 2473U);
  EXPECT_EQ(g.max_degree(), 22U);
}

TEST(Golden, PermutationIsStable) {
  Rng rng(0xbeef);
  const auto perm = random_permutation(10, rng);
  EXPECT_EQ(perm, (std::vector<std::uint32_t>{0, 6, 7, 8, 2, 3, 5, 9, 4, 1}));
}

TEST(Golden, GreedyMisSizeIsStable) {
  const Graph g = golden_graph();
  Rng rng(42);
  const auto perm = random_permutation(g.num_vertices(), rng);
  const auto trace = greedy_mis_trace(g, perm);
  EXPECT_EQ(trace.mis.size(), 127U);
  EXPECT_EQ(trace.mis.front(), 353U);
  EXPECT_EQ(trace.mis.back(), 416U);
}

TEST(Golden, MisMpcExactModeIsStable) {
  const Graph g = golden_graph();
  MisMpcOptions opt;
  opt.seed = 42;
  opt.use_sparsified_stage = false;
  const auto r = mis_mpc(g, opt);
  EXPECT_EQ(r.mis.size(), 127U);
  EXPECT_EQ(r.metrics.violations, 0U);
}

TEST(Golden, MisMpcAndCcliqueAgreeExactly) {
  const Graph g = golden_graph();
  const std::size_t budget = 4 * g.num_vertices();
  MisMpcOptions mo;
  mo.seed = 7;
  mo.gather_budget = budget;
  MisCcliqueOptions co;
  co.seed = 7;
  co.gather_budget = budget;
  EXPECT_EQ(mis_mpc(g, mo).mis, mis_cclique(g, co).mis);
}

}  // namespace
}  // namespace mpcg
