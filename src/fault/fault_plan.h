// Deterministic fault schedules for the simulated MPC cluster.
//
// A FaultPlan is a seeded, fully-deterministic list of fault events —
// "crash machine i at round r", "drop machine i's flush at round r", and
// so on — that the engines consult at every round boundary.  Because the
// schedule is data (not wall-clock or signal driven), a faulty run is as
// reproducible as a fault-free one, which is what lets the coupling tests
// assert bit-identical recovery.
//
// The plan is engine-agnostic: "machine" means an mpc::Engine machine or a
// cclique::Engine player depending on who consumes it.  This header has no
// engine dependencies so either engine (and the drivers' option structs)
// can include it without cycles.
#ifndef MPCG_FAULT_FAULT_PLAN_H
#define MPCG_FAULT_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpcg::fault {

/// What goes wrong.  All four model failures of the *message plane*; the
/// round structure of the MPC model is exactly what makes each cheap to
/// recover from (re-run one round from the last checkpoint).
enum class FaultKind : std::uint8_t {
  /// The machine dies mid-round: its staged outbox is lost and it never
  /// receives this round's deliveries.  With recovery the round is rolled
  /// back and replayed; without, the machine simply goes dark for the round.
  kCrash,
  /// The machine's outbound flush is lost in the shuffle; its local state
  /// survives.  Recovery retransmits from the sender-side retained copy.
  kDropFlush,
  /// The machine's outbound flush arrives twice.  Recovery deduplicates by
  /// (round, sequence) and delivers exactly once; without recovery the
  /// duplicate hits receivers twice (and trips congestion accounting).
  kDuplicateFlush,
  /// The machine's outbound flush misses the round barrier and arrives one
  /// round late.  Recovery stalls the barrier (one replayed round); without
  /// recovery the words are injected at the head of the next round's flush.
  kDelayFlush,
  /// Silent in-transit corruption: deterministic bit flips in the machine's
  /// staged word stream at the round boundary.  With integrity checking
  /// (mpc::Config::integrity / the cclique analogue) the per-sender stream
  /// checksum catches the mismatch at delivery and the sender's retained
  /// stream is retransmitted — up to `retransmit_budget` times per
  /// (machine, round), after which recovery escalates to the checkpoint
  /// rollback path.  Without integrity checking the corruption propagates
  /// undetected into the algorithm's output.
  kCorruptPayload,
  /// Silent rot in the *durable store*: deterministic bit flips in a
  /// payload blob the machine published through stage_payload (mpc) or in
  /// the machine's staged broadcast words (cclique) at the round boundary.
  /// With integrity checking the per-blob store digest catches the
  /// mismatch and the publisher's retained pristine copy repairs it in
  /// place — budgeted by `retransmit_budget` exactly like kCorruptPayload,
  /// escalating to checkpoint rollback past the budget.  Without integrity
  /// the rot propagates into every reader's aliasing view.
  kCorruptStore,
  /// Bit rot in a *retained checkpoint image*: flips bits in one
  /// generation of the driver's CheckpointRegistry ring.  Nothing is
  /// touched at injection time beyond the stored image; the damage
  /// surfaces (and is absorbed) at the next restore, which verifies
  /// per-provider checksums and falls back to an older verified
  /// generation — or throws CheckpointError when every generation is bad.
  /// A no-op when no checkpoint has been retained yet.
  kCorruptCheckpoint,
};

/// One scheduled fault.
struct FaultEvent {
  std::size_t round = 0;    ///< Engine round index (Metrics::rounds at entry).
  std::size_t machine = 0;  ///< Machine / player id.
  FaultKind kind = FaultKind::kCrash;
};

/// Thrown when a plan schedules more recoverable crashes than its
/// `crash_budget` allows — the cluster is declared unrecoverable and the
/// caller (e.g. run_with_reprovision) must reprovision or give up.
class FaultBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deterministic schedule of fault events, sorted by round.
class FaultPlan {
 public:
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  /// Maximum number of crashes the recovery machinery will absorb before
  /// throwing FaultBudgetError.  Defaults to unlimited.
  std::size_t crash_budget = kUnlimited;

  /// Maximum detect->retransmit cycles per (machine, round) before a
  /// detected corruption escalates to the checkpoint-recovery path (the
  /// (retransmit_budget + 1)-th corruption of one machine's flush in one
  /// round rolls the round back instead of retransmitting again).
  std::size_t retransmit_budget = 2;

  FaultPlan& add_crash(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kCrash});
  }
  FaultPlan& add_drop(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kDropFlush});
  }
  FaultPlan& add_duplicate(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kDuplicateFlush});
  }
  FaultPlan& add_delay(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kDelayFlush});
  }
  FaultPlan& add_corrupt(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kCorruptPayload});
  }
  FaultPlan& add_corrupt_store(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kCorruptStore});
  }
  FaultPlan& add_corrupt_checkpoint(std::size_t machine, std::size_t round) {
    return add({round, machine, FaultKind::kCorruptCheckpoint});
  }
  FaultPlan& add(const FaultEvent& event);

  /// All events scheduled for `round`, in insertion order.  The returned
  /// span is valid until the next add().
  [[nodiscard]] std::span<const FaultEvent> events_at(std::size_t round) const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::span<const FaultEvent> events() const;

  /// Number of kCrash events in the plan.
  [[nodiscard]] std::size_t crash_count() const noexcept;

  /// Number of kCorruptPayload events in the plan.
  [[nodiscard]] std::size_t corrupt_count() const noexcept;

  /// Largest round index any event is scheduled at (0 if empty).
  [[nodiscard]] std::size_t last_round() const noexcept;

  /// Parses "crash:<machine>@<round>,drop:<machine>@<round>,..." — the
  /// mpcg_run --faults syntax.  Kinds: crash, drop, dup (or duplicate),
  /// delay, corrupt, corrupt_store, corrupt_ckpt.  Throws
  /// std::invalid_argument on malformed input:
  /// truncated tokens, non-numeric or overflowing machine/round fields,
  /// and exact duplicate (kind, machine, round) events are all rejected
  /// with messages naming the offending token.  (Repeated corruption of
  /// one flush — the retransmit-budget escalation — is built
  /// programmatically via add_corrupt, not through this syntax.)
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  /// A seeded schedule of `count` crashes with machine ids below
  /// `num_machines` and rounds below `max_round`, derived statelessly from
  /// mix64(seed, ·) like every other random decision in the library.
  [[nodiscard]] static FaultPlan random_crashes(std::uint64_t seed,
                                                std::size_t num_machines,
                                                std::size_t max_round,
                                                std::size_t count);

  /// A seeded multi-fault storm: `count` events drawn over all seven kinds
  /// (crash/drop/dup/delay/corrupt/corrupt_store/corrupt_ckpt), machines
  /// below `num_machines`, rounds below `max_round` — the chaos harness's
  /// schedule generator.  Exact (kind, machine, round) duplicates are
  /// re-drawn (bounded), so the result round-trips through
  /// to_string()/parse().  kCorruptCheckpoint events are drawn onto rounds
  /// of their own (no other event shares the round; re-drawn otherwise): a
  /// restore in the same round as rot of the just-captured newest
  /// generation can meet a not-yet-full ring with no verified generation
  /// left — a legitimately unrecoverable cluster, which is a hand-authored
  /// test scenario, not a soak scenario.
  [[nodiscard]] static FaultPlan random_storm(std::uint64_t seed,
                                              std::size_t num_machines,
                                              std::size_t max_round,
                                              std::size_t count);

  /// Round-trips through parse(): "crash:3@7,drop:2@5".
  [[nodiscard]] std::string to_string() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace mpcg::fault

#endif  // MPCG_FAULT_FAULT_PLAN_H
