// Re-tunes Config::dense_machine_limit for this box.
//
// The engine has two exchange representations: the dense per-(sender,
// receiver) box matrix (O(m^2) storage, delivery by pure bulk copies) and
// the flat per-sender outboxes (O(words) storage, counting-sort delivery).
// The crossover between them is a per-machine-count wall-clock race on a
// scattered all-to-all workload: both representations move the same words
// through the same Engine API, only Config::dense_machine_limit differs.
//
// Usage: bench_exchange_crossover [rounds] [words_per_machine]
//   rounds            exchange rounds per timed cell (default 8)
//   words_per_machine unicast words each machine scatters per round
//                     (default 4096)
//
// Output: one row per machine count with both timings and the winner, then
// the suggested dense_machine_limit (largest m where dense still wins).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpc/engine.h"
#include "util/rng.h"

namespace {

using namespace mpcg;
using mpc::Engine;
using mpc::Word;

double run_cell(std::size_t machines, std::size_t dense_limit,
                std::size_t rounds, std::size_t words_per_machine) {
  mpc::Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = std::max<std::size_t>(words_per_machine * 2, 1024);
  cfg.strict = false;
  cfg.dense_machine_limit = dense_limit;
  Engine engine(cfg);

  // Deterministic scattered destinations, the shape of per-edge driver
  // traffic (rank phases, sparsified iterations): many senders, many
  // destinations, short same-destination runs.
  Rng rng(0x0c4055);
  std::vector<std::uint32_t> dests(words_per_machine);
  for (auto& d : dests) {
    d = static_cast<std::uint32_t>(rng() % machines);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t from = 0; from < machines; ++from) {
      for (std::size_t i = 0; i < dests.size(); ++i) {
        engine.push(from, (dests[i] + from) % machines,
                    static_cast<Word>(i));
      }
    }
    engine.exchange();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8;
  const std::size_t words =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4096;

  std::printf("# exchange crossover: %zu rounds x %zu words/machine/round\n",
              rounds, words);
  std::printf("%10s %14s %14s %8s\n", "machines", "dense_ms", "flat_ms",
              "winner");

  std::size_t suggested = 0;
  // The dense matrix allocates m^2 boxes — cap that side of the race at
  // 4096 machines (the flat side keeps going in real use anyway).
  for (std::size_t m = 64; m <= 4096; m *= 2) {
    const double dense = run_cell(m, m, rounds, words);       // force dense
    const double flat = run_cell(m, 0, rounds, words);        // force flat
    const bool dense_wins = dense <= flat;
    if (dense_wins) suggested = m;
    std::printf("%10zu %14.2f %14.2f %8s\n", m, dense, flat,
                dense_wins ? "dense" : "flat");
  }
  if (suggested == 0) {
    std::printf("suggested dense_machine_limit: 0 (flat always won)\n");
  } else {
    std::printf("suggested dense_machine_limit: %zu\n", suggested);
  }
  return 0;
}
