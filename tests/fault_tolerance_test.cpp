// Fault-tolerant execution: crash injection, checkpoint/recovery, and
// reprovisioning.
//
// The load-bearing property is the *coupling*: a run with an injected
// crash schedule, recovered through the round-level checkpoint, must be
// bit-identical to the fault-free run — same x, same cover, same freeze
// iterations, same logical Metrics — with the recovery cost visible only
// in the dedicated overhead fields (rounds_replayed, words_resent,
// checkpoint_bytes, faults_injected).  That holds because every random
// decision in the library derives statelessly from mix64(seed, ·), so a
// replayed round re-derives exactly the bits the crashed round lost.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/matching_mpc.h"
#include "core/mis_mpc.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "fault/reprovision.h"
#include "graph/validation.h"
#include "mpc/engine.h"
#include "test_util.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::make_family;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParseRoundTripsThroughToString) {
  const auto plan = fault::FaultPlan::parse("crash:3@7,drop:2@5,dup:1@9,"
                                            "delay:0@2");
  EXPECT_EQ(plan.size(), 4U);
  EXPECT_EQ(plan.crash_count(), 1U);
  EXPECT_EQ(plan.last_round(), 9U);
  const auto again = fault::FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(again.events()[i].round, plan.events()[i].round);
    EXPECT_EQ(again.events()[i].machine, plan.events()[i].machine);
    EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind);
  }
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)fault::FaultPlan::parse("crash:1"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("melt:1@2"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash:x@2"),
               std::invalid_argument);
}

// Asserts that parsing `spec` throws std::invalid_argument whose message
// contains `needle` — the error must name the offending token.
void expect_parse_error(const std::string& spec, const std::string& needle) {
  try {
    (void)fault::FaultPlan::parse(spec);
    FAIL() << "parse(\"" << spec << "\") did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message \"" << e.what() << "\" lacks \"" << needle << "\" for \""
        << spec << "\"";
  }
}

TEST(FaultPlan, ParseNamesTheOffendingToken) {
  // Truncated specs: missing round, missing machine, empty fields.
  expect_parse_error("crash:1", "crash:1");
  expect_parse_error("corrupt:2", "corrupt:2");
  expect_parse_error("drop@4", "drop@4");
  expect_parse_error("crash:@2", "crash:@2");
  expect_parse_error("crash:1@", "crash:1@");
  // Overflowing numerals must be rejected, not wrapped.
  expect_parse_error("crash:1@999999999999999999999999",
                     "999999999999999999999999");
  expect_parse_error("corrupt:888888888888888888888888@1",
                     "888888888888888888888888");
  // Duplicate (kind, machine, round) triples are schedule bugs.
  expect_parse_error("crash:1@2,drop:0@3,crash:1@2", "duplicate");
}

TEST(FaultPlan, RandomStormRoundTripsThroughParse) {
  // Property test: every seeded storm is duplicate-free, in-range, and
  // survives to_string()/parse() verbatim.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto storm =
        fault::FaultPlan::random_storm(mix64(seed, 0, 0x570f), 6, 24, 10);
    EXPECT_EQ(storm.size(), 10U) << seed;
    for (const auto& ev : storm.events()) {
      EXPECT_LT(ev.machine, 6U) << seed;
      EXPECT_LT(ev.round, 24U) << seed;
    }
    const auto again = fault::FaultPlan::parse(storm.to_string());
    EXPECT_EQ(again.to_string(), storm.to_string()) << seed;
    ASSERT_EQ(again.size(), storm.size()) << seed;
    for (std::size_t i = 0; i < storm.size(); ++i) {
      EXPECT_EQ(again.events()[i].round, storm.events()[i].round) << seed;
      EXPECT_EQ(again.events()[i].machine, storm.events()[i].machine)
          << seed;
      EXPECT_EQ(again.events()[i].kind, storm.events()[i].kind) << seed;
    }
  }
  // Seed-determinism and seed-sensitivity.
  const auto a = fault::FaultPlan::random_storm(7, 4, 16, 8);
  const auto b = fault::FaultPlan::random_storm(7, 4, 16, 8);
  const auto c = fault::FaultPlan::random_storm(8, 4, 16, 8);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, RandomStormMixesFaultKinds) {
  // Over a few seeds the storm generator must exercise every kind,
  // including payload corruption.
  std::size_t corrupt = 0;
  std::size_t crash = 0;
  std::size_t other = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto storm = fault::FaultPlan::random_storm(seed, 8, 32, 12);
    corrupt += storm.corrupt_count();
    crash += storm.crash_count();
    other += storm.size() - storm.corrupt_count() - storm.crash_count();
  }
  EXPECT_GT(corrupt, 0U);
  EXPECT_GT(crash, 0U);
  EXPECT_GT(other, 0U);
}

TEST(FaultPlan, EventsAtGroupsByRoundInInsertionOrder) {
  fault::FaultPlan plan;
  plan.add_drop(1, 4).add_crash(0, 2).add_delay(2, 4);
  EXPECT_EQ(plan.events_at(3).size(), 0U);
  ASSERT_EQ(plan.events_at(2).size(), 1U);
  EXPECT_EQ(plan.events_at(2)[0].machine, 0U);
  ASSERT_EQ(plan.events_at(4).size(), 2U);
  EXPECT_EQ(plan.events_at(4)[0].kind, fault::FaultKind::kDropFlush);
  EXPECT_EQ(plan.events_at(4)[1].kind, fault::FaultKind::kDelayFlush);
}

TEST(FaultPlan, RandomCrashesAreSeedDeterministic) {
  const auto a = fault::FaultPlan::random_crashes(42, 8, 20, 5);
  const auto b = fault::FaultPlan::random_crashes(42, 8, 20, 5);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.size(), 5U);
  EXPECT_EQ(a.crash_count(), 5U);
  for (const auto& ev : a.events()) {
    EXPECT_LT(ev.machine, 8U);
    EXPECT_LT(ev.round, 20U);
  }
  const auto c = fault::FaultPlan::random_crashes(43, 8, 20, 5);
  EXPECT_NE(a.to_string(), c.to_string());
}

// ----------------------------------------------------- CheckpointRegistry

TEST(CheckpointRegistry, CaptureRestoreRoundTripsProviders) {
  fault::CheckpointRegistry reg;
  std::vector<std::uint64_t> state_a = {1, 2, 3};
  double state_b = 0.5;
  reg.register_state(
      "a",
      [&](std::vector<fault::CheckpointRegistry::Word>& out) {
        out.insert(out.end(), state_a.begin(), state_a.end());
      },
      [&](std::span<const fault::CheckpointRegistry::Word> in) {
        state_a.assign(in.begin(), in.end());
      });
  reg.register_state(
      "b",
      [&](std::vector<fault::CheckpointRegistry::Word>& out) {
        fault::CheckpointRegistry::Word w;
        static_assert(sizeof w == sizeof state_b);
        __builtin_memcpy(&w, &state_b, sizeof w);
        out.push_back(w);
      },
      [&](std::span<const fault::CheckpointRegistry::Word> in) {
        __builtin_memcpy(&state_b, &in[0], sizeof state_b);
      });
  EXPECT_EQ(reg.num_providers(), 2U);
  EXPECT_FALSE(reg.has_checkpoint());
  EXPECT_EQ(reg.capture(), 4U);
  EXPECT_TRUE(reg.has_checkpoint());

  state_a = {9, 9};
  state_b = -3.25;
  reg.restore();
  EXPECT_EQ(state_a, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(state_b, 0.5);
  EXPECT_EQ(reg.captures(), 1U);
  EXPECT_EQ(reg.restores(), 1U);
}

TEST(CheckpointRegistry, IncrementalCapturesChargeDirtyRangesOnly) {
  // Repeated captures of mostly-unchanged state are charged by dirty
  // range (2 header words + payload per maximal dirty stretch), not by
  // full size; restore stays bit-identical either way.
  fault::CheckpointRegistry reg;
  std::vector<std::uint64_t> vec(64);
  for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = i * 3 + 1;
  std::uint64_t scalar = 99;
  reg.register_state(
      "vec",
      [&](std::vector<fault::CheckpointRegistry::Word>& out) {
        out.insert(out.end(), vec.begin(), vec.end());
      },
      [&](std::span<const fault::CheckpointRegistry::Word> in) {
        vec.assign(in.begin(), in.end());
      });
  reg.register_state(
      "scalar",
      [&](std::vector<fault::CheckpointRegistry::Word>& out) {
        out.push_back(scalar);
      },
      [&](std::span<const fault::CheckpointRegistry::Word> in) {
        scalar = in[0];
      });

  // First capture is a full serialization of both providers.
  EXPECT_EQ(reg.capture(), 65U);
  EXPECT_EQ(reg.last_capture_words(), 65U);
  EXPECT_EQ(reg.delta_captures(), 0U);

  // One dirty word: 2 header + 1 payload; the untouched scalar is free.
  vec[10] ^= 0xff;
  EXPECT_EQ(reg.capture(), 3U);
  EXPECT_EQ(reg.delta_captures(), 1U);

  // Two separated dirty words: two stretches, (2+1) + (2+1).
  vec[5] += 1;
  vec[50] += 1;
  EXPECT_EQ(reg.capture(), 6U);
  EXPECT_EQ(reg.delta_captures(), 2U);

  // Nothing changed: a capture costs nothing.
  EXPECT_EQ(reg.capture(), 0U);
  EXPECT_EQ(reg.delta_captures(), 3U);

  // A resize falls back to a full save of that provider.
  vec.resize(80, 7);
  EXPECT_EQ(reg.capture(), 80U);
  EXPECT_EQ(reg.delta_captures(), 3U);

  // Restore after a delta capture is still bit-identical.
  const auto want_vec = vec;
  const auto want_scalar = scalar;
  for (auto& w : vec) w = 0;
  scalar = 0;
  reg.restore();
  EXPECT_EQ(vec, want_vec);
  EXPECT_EQ(scalar, want_scalar);
}

TEST(CheckpointRegistry, DenseDirtStillCapsAtFullSaveCost) {
  // When every word changes, the dirty-range encoding must cost no more
  // than the full save it replaces.
  fault::CheckpointRegistry reg;
  std::vector<std::uint64_t> vec(32, 1);
  reg.register_state(
      "vec",
      [&](std::vector<fault::CheckpointRegistry::Word>& out) {
        out.insert(out.end(), vec.begin(), vec.end());
      },
      [&](std::span<const fault::CheckpointRegistry::Word> in) {
        vec.assign(in.begin(), in.end());
      });
  EXPECT_EQ(reg.capture(), 32U);
  for (auto& w : vec) w += 1;
  EXPECT_LE(reg.capture(), 32U);
  for (auto& w : vec) w = 0;
  reg.restore();
  EXPECT_EQ(vec, std::vector<std::uint64_t>(32, 2));
}

// ------------------------------------------------- engine Snapshot/restore

TEST(EngineSnapshot, RestoreReplaysTheRoundIdentically) {
  mpc::Engine eng(mpc::Config{3, 64, true});
  eng.push(0, 1, 11);
  eng.push(0, 1, 12);
  eng.push(2, 1, 13);
  eng.push(1, 0, 14);
  const auto snap = eng.snapshot();
  EXPECT_GT(snap.words(), 0U);

  eng.exchange();
  std::vector<mpc::Word> first;
  eng.inbox_view(1).append_to(first);
  const auto rounds_after = eng.metrics().rounds;

  eng.restore(snap);
  EXPECT_EQ(eng.metrics().rounds, rounds_after - 1);
  eng.exchange();
  std::vector<mpc::Word> second;
  eng.inbox_view(1).append_to(second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(eng.metrics().rounds, rounds_after);
}

// ----------------------------------------------------------- coupling runs

struct MatchingObs {
  std::vector<double> x;
  std::vector<VertexId> cover;
  std::vector<std::uint32_t> freeze_iteration;
  std::size_t rounds;
  std::size_t total_words;
  std::size_t violations;
};

MatchingObs observe(const MatchingMpcResult& r) {
  return {r.x,
          r.cover,
          r.freeze_iteration,
          r.metrics.rounds,
          r.metrics.total_words,
          r.metrics.violations};
}

void expect_equal(const MatchingObs& a, const MatchingObs& b,
                  const std::string& label) {
  EXPECT_EQ(a.x, b.x) << label;
  EXPECT_EQ(a.cover, b.cover) << label;
  EXPECT_EQ(a.freeze_iteration, b.freeze_iteration) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.total_words, b.total_words) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
}

TEST(CrashRecoveryCoupling, MatchingBitIdenticalAcrossFamilies) {
  // gnp/rmat/star at 2^12..2^14 with a seeded random crash schedule: the
  // recovered run must match the fault-free run exactly, and the overhead
  // metrics must show the recovery actually happened.
  struct Case {
    const char* family;
    std::size_t n;
  };
  for (const Case c : {Case{"gnp_sparse", 1ULL << 12},
                       Case{"rmat", 1ULL << 13},
                       Case{"star", 1ULL << 14}}) {
    const Graph g = make_family(c.family, c.n, 11);
    MatchingMpcOptions opt;
    opt.eps = 0.1;
    opt.seed = 11;
    const auto clean = matching_mpc(g, opt);
    ASSERT_GT(clean.metrics.rounds, 0U) << c.family;

    const auto plan = fault::FaultPlan::random_crashes(
        mix64(11, c.n, 0xfa17), /*num_machines=*/4, clean.metrics.rounds, 3);
    MatchingMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    const auto recovered = matching_mpc(g, faulty);

    expect_equal(observe(clean), observe(recovered), c.family);
    EXPECT_GT(recovered.metrics.faults_injected, 0U) << c.family;
    EXPECT_EQ(recovered.metrics.rounds_replayed,
              recovered.metrics.faults_injected)
        << c.family;  // every applied event here is a crash
    EXPECT_GT(recovered.metrics.checkpoint_bytes, 0U) << c.family;
    EXPECT_EQ(clean.metrics.rounds_replayed, 0U) << c.family;
    EXPECT_EQ(clean.metrics.checkpoint_bytes, 0U) << c.family;
  }
}

TEST(CrashRecoveryCoupling, MisBitIdenticalAcrossFamilies) {
  struct Case {
    const char* family;
    std::size_t n;
  };
  for (const Case c : {Case{"gnp_sparse", 1ULL << 12},
                       Case{"rmat", 1ULL << 13},
                       Case{"star", 1ULL << 14}}) {
    const Graph g = make_family(c.family, c.n, 23);
    MisMpcOptions opt;
    opt.seed = 23;
    const auto clean = mis_mpc(g, opt);
    ASSERT_GT(clean.metrics.rounds, 0U) << c.family;

    const auto plan = fault::FaultPlan::random_crashes(
        mix64(23, c.n, 0xfa17), /*num_machines=*/2, clean.metrics.rounds, 3);
    MisMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    const auto recovered = mis_mpc(g, faulty);

    EXPECT_EQ(clean.mis, recovered.mis) << c.family;
    EXPECT_EQ(clean.rank_phases, recovered.rank_phases) << c.family;
    EXPECT_EQ(clean.metrics.rounds, recovered.metrics.rounds) << c.family;
    EXPECT_EQ(clean.metrics.total_words, recovered.metrics.total_words)
        << c.family;
    EXPECT_GT(recovered.metrics.faults_injected, 0U) << c.family;
    EXPECT_GT(recovered.metrics.checkpoint_bytes, 0U) << c.family;
    EXPECT_TRUE(is_maximal_independent_set(g, recovered.mis)) << c.family;
  }
}

TEST(CrashRecoveryCoupling, DropDuplicateDelayAllRecoverExactly) {
  const Graph g = make_family("gnp_dense", 1 << 12, 31);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 31;
  const auto clean = matching_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 6U);

  fault::FaultPlan plan;
  plan.add_drop(0, 2)
      .add_duplicate(1, 3)
      .add_delay(0, 4)
      .add_crash(1, 5)
      .add_drop(1, clean.metrics.rounds - 1);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  const auto recovered = matching_mpc(g, faulty);

  expect_equal(observe(clean), observe(recovered), "mixed-kinds");
  EXPECT_GT(recovered.metrics.faults_injected, 0U);
  // Every drop/crash replays its round (delay stalls one as well); the
  // word-level retransmission accounting is pinned by
  // WordsResentTracksCrashTraffic, whose schedule guarantees traffic.
  EXPECT_GT(recovered.metrics.rounds_replayed, 0U);
}

TEST(CrashRecoveryCoupling, WordsResentTracksCrashTraffic) {
  // A crash at a traffic-carrying round must charge retransmission words.
  const Graph g = make_family("gnp_dense", 1 << 12, 37);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 37;
  const auto clean = matching_mpc(g, opt);
  fault::FaultPlan plan;
  for (std::size_t r = 1; r + 1 < clean.metrics.rounds && r < 8; ++r) {
    plan.add_crash(0, r);
  }
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  const auto recovered = matching_mpc(g, faulty);
  expect_equal(observe(clean), observe(recovered), "crash-traffic");
  EXPECT_GT(recovered.metrics.words_resent, 0U);
}

TEST(CrashWithoutRecovery, DarkMachinesDivergeTheRun) {
  // fault_recovery = false: crashed machines lose their flush and their
  // inbound round for good. Crashing a machine across many early rounds
  // must perturb at least one observable of the run (the coupling tests
  // above show recovery is what restores identity).
  const Graph g = make_family("gnp_dense", 1 << 12, 41);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 41;
  opt.strict = false;  // a dark machine may trip budget accounting
  const auto clean = matching_mpc(g, opt);

  fault::FaultPlan plan;
  for (std::size_t r = 0; r < clean.metrics.rounds; ++r) {
    plan.add_crash(0, r);
    plan.add_crash(1, r);
  }
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.fault_recovery = false;
  const auto dark = matching_mpc(g, faulty);

  const bool diverged = clean.x != dark.x || clean.cover != dark.cover ||
                        clean.freeze_iteration != dark.freeze_iteration ||
                        clean.metrics.total_words != dark.metrics.total_words;
  EXPECT_TRUE(diverged);
  EXPECT_EQ(dark.metrics.rounds_replayed, 0U);
  EXPECT_GT(dark.metrics.faults_injected, 0U);
}

// ------------------------------------------------------------- budgets

TEST(CrashBudget, ExhaustionThrowsFaultBudgetError) {
  const Graph g = make_family("gnp_dense", 1 << 10, 43);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 43;
  const auto clean = matching_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 3U);

  fault::FaultPlan plan;
  plan.crash_budget = 1;
  plan.add_crash(0, 1).add_crash(0, 2).add_crash(0, 3);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  try {
    (void)matching_mpc(g, faulty);
    FAIL() << "expected FaultBudgetError";
  } catch (const fault::FaultBudgetError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("crash budget of 1 exhausted"), std::string::npos)
        << what;
  }
}

// ------------------------------------------------------------ reprovision

TEST(Reprovision, ScalesWordsUntilStrictRunFits) {
  const Graph g = make_family("gnp_dense", 600, 47);
  const auto outcome = fault::run_with_reprovision(
      fault::ReprovisionPolicy{},
      [&](std::size_t scale) {
        MisMpcOptions opt;
        opt.seed = 47;
        opt.words_per_machine = 600 * scale;  // scale 1 cannot fit n=600
        opt.num_machines = 4;
        return mis_mpc(g, opt);
      },
      [](const MisMpcResult& r) { return r.metrics.violations == 0; });
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.scale, 1U);
  EXPECT_GT(outcome.attempts, 1U);
  EXPECT_FALSE(outcome.failures.empty());
  EXPECT_TRUE(is_maximal_independent_set(g, outcome.result->mis));
}

TEST(Reprovision, GivesUpAfterBoundedAttempts) {
  std::size_t calls = 0;
  const auto outcome = fault::run_with_reprovision(
      fault::ReprovisionPolicy{.max_attempts = 3},
      [&](std::size_t) -> int {
        ++calls;
        throw mpc::CapacityError("always too small");
      },
      [](int) { return true; });
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(calls, 3U);
  EXPECT_EQ(outcome.attempts, 3U);
  EXPECT_EQ(outcome.failures.size(), 3U);
}

TEST(Reprovision, BlownCrashBudgetCountsAsFailedAttempt) {
  const Graph g = make_family("gnp_dense", 1 << 10, 53);
  fault::FaultPlan plan;
  plan.crash_budget = 0;
  plan.add_crash(0, 1);
  std::size_t attempts_seen = 0;
  const auto outcome = fault::run_with_reprovision(
      fault::ReprovisionPolicy{.max_attempts = 2},
      [&](std::size_t) {
        ++attempts_seen;
        MatchingMpcOptions opt;
        opt.eps = 0.1;
        opt.seed = 53;
        opt.fault_plan = &plan;
        return matching_mpc(g, opt);
      },
      [](const MatchingMpcResult&) { return true; });
  // More memory cannot buy back a blown crash budget: every attempt fails.
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(attempts_seen, 2U);
  for (const std::string& f : outcome.failures) {
    EXPECT_NE(f.find("crash budget"), std::string::npos) << f;
  }
}

}  // namespace
}  // namespace mpcg
