#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "baselines/brute_force.h"
#include "core/vertex_cover.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

MatchingMpcOptions opts(std::uint64_t seed) {
  MatchingMpcOptions o;
  o.eps = 0.1;
  o.seed = seed;
  o.threshold_seed = seed + 1;
  return o;
}

TEST(VertexCoverApi, CoversEveryFamily) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 300, 3);
    const auto r = minimum_vertex_cover_mpc(g, opts(3));
    EXPECT_TRUE(is_vertex_cover(g, r.cover)) << family;
  }
}

TEST(VertexCoverApi, DualCertificateBoundsTheRun) {
  // Any vertex cover has size >= the fractional matching weight (weak
  // duality), so the per-run factor cover/certificate is a sound
  // self-certification. Check it against the truth on exact instances.
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    const Graph g = erdos_renyi_gnp(12, 0.3, rng);
    if (g.num_edges() == 0) continue;
    ++checked;
    const auto r = minimum_vertex_cover_mpc(g, opts(trial));
    const std::size_t opt_vc = brute_force_min_vertex_cover(g);
    EXPECT_LE(r.dual_certificate, static_cast<double>(opt_vc) + 1e-9);
    EXPECT_GE(r.cover.size(), opt_vc);
  }
  EXPECT_GE(checked, 10);
}

TEST(VertexCoverApi, FactorAgainstMatchingLowerBound) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "bipartite"}) {
    const Graph g = make_family(family, 300, 9);
    if (g.num_edges() == 0) continue;
    const auto r = minimum_vertex_cover_mpc(g, opts(9));
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_LE(static_cast<double>(r.cover.size()), (2.0 + 50.0 * 0.1) * nu)
        << family;
  }
}

TEST(VertexCoverApi, ReportsRoundsAndPhases) {
  const Graph g = make_family("gnp_dense", 400, 11);
  const auto r = minimum_vertex_cover_mpc(g, opts(11));
  EXPECT_GE(r.rounds, 1U);
  EXPECT_GE(r.phases, 1U);
  EXPECT_GT(r.dual_certificate, 0.0);
}

}  // namespace
}  // namespace mpcg
